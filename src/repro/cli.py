"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the Table 2 benchmark registry;
* ``run ABBR`` — simulate one benchmark under one technique;
* ``compare ABBR`` — all four techniques side by side;
* ``trace ABBR`` — traced run: stall attribution, Chrome trace JSON,
  queue-occupancy CSV;
* ``decouple ABBR | --file F`` — show a kernel's affine / non-affine
  streams and the verifier's verdict;
* ``table1`` — the simulated machine configuration;
* ``area`` — DAC's §4.8 area overhead;
* ``figures [NAME]`` — regenerate evaluation figures (fig6, fig16, fig17,
  fig18, fig19, fig20, fig21, or ``all``);
* ``faults`` — seeded fault-injection campaign: every injected fault must
  be detected (checker / hang / oracle) or survived, never silent;
* ``perf`` — the benchmark gate: run the fixed workload × technique
  matrix with multi-rep statistical timing (mean, 95% CI, Welch t-test
  verdict vs ``BENCH_baseline.json``), assert Stats bit-identity against
  the committed goldens, write throughput numbers to the next free
  ``BENCH_<n>.json``, and append to the ``BENCH_history.jsonl`` series
  (``--history`` summarizes the trajectory);
* ``lint`` — static diagnostics (``RPL0xx``) over benchmarks or an
  assembly file; ``--campaign`` differentially validates every diagnostic
  class against the simulator; ``--sarif`` exports findings as SARIF;
* ``certify`` — translation validation of the decoupling compiler: prove
  every queue tuple equivalent to the original access (RPL05x) over
  benchmarks, fuzz kernels, or an assembly file; ``--campaign`` runs the
  seeded decoupler-mutation campaign (no silent escapes allowed);
* ``serve`` — the supervised experiment daemon: journaled jobs over a
  unix socket, worker heartbeats + watchdog respawn, per-workload
  circuit breakers, graceful drain; simulating commands route through a
  running daemon automatically (``--service``/``--no-service``).
"""

from __future__ import annotations

import argparse
import sys

from .compiler import decouple, verify
from .energy import area_report, energy_of
from .harness import (
    ascii_table,
    configure_cache,
    profile,
    experiment_config,
    fig6_report,
    fig16_report,
    fig16_speedup,
    fig17_instruction_counts,
    fig18_coverage,
    fig19_affine_loads,
    fig20_mta_coverage,
    fig21_energy,
    fig21_report,
    run_one,
    run_suite,
)
from .harness.parallel import run_grid
from .isa import Kernel, parse_kernel
from .trace import (
    Tracer,
    stall_report,
    write_chrome_trace,
    write_occupancy_csv,
)
from .workloads import (
    ALL_BENCHMARKS,
    COMPUTE_ORDER,
    MEMORY_ORDER,
    get,
    table2,
)


def _add_harness_args(parser) -> None:
    """Flags shared by the commands that simulate: parallelism and the
    persistent result cache (see EXPERIMENTS.md)."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan simulations out over N worker processes")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent result cache location "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro-dac)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-simulation wall-clock bound in seconds "
                             "(parallel runs only); expired cells are "
                             "retried, then quarantined")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="re-submissions per cell after a timeout or "
                             "transient worker failure (default 1)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="persist finished grid cells under DIR and "
                             "resume from them on the next run")
    parser.add_argument("--retry-quarantined", action="store_true",
                        help="forget checkpointed quarantine verdicts and "
                             "give those cells another chance")
    parser.add_argument("--service", default=None, metavar="SOCK",
                        help="route simulations through the experiment "
                             "daemon at SOCK (default: auto-detect "
                             "$REPRO_SERVICE_SOCKET or the default "
                             "socket; falls back to the local pool)")
    parser.add_argument("--no-service", action="store_true",
                        help="never route through a daemon, even if one "
                             "is running")


def _configure_harness(args) -> bool:
    """Apply the shared cache flags; returns whether caching is on."""
    use_cache = not args.no_cache
    configure_cache(args.cache_dir, enabled=use_cache)
    return use_cache


def _service_arg(args):
    """The ``service`` value for run_grid/run_suite from the shared
    flags: ``False`` disables routing, a path pins a daemon, ``None``
    auto-detects."""
    if getattr(args, "no_service", False):
        return False
    return getattr(args, "service", None)


def _cmd_list(args) -> int:
    print(table2())
    print()
    rows = [[b.abbr, b.category, b.description] for b in ALL_BENCHMARKS]
    print(ascii_table(["bench", "class", "structure"], rows))
    return 0


def _cmd_run(args) -> int:
    use_cache = _configure_harness(args)
    config = experiment_config(args.sms)
    result = run_one(args.benchmark.upper(), args.technique, args.scale,
                     config, use_cache=use_cache)
    energy = energy_of(result)
    print(f"{args.benchmark} under {args.technique} "
          f"({args.scale} scale, {args.sms} SMs):")
    print(f"  cycles             {result.cycles:,}")
    print(f"  warp instructions  {result.stats['warp_instructions']:,.0f}")
    if result.stats["affine_warp_instructions"]:
        print(f"  affine warp insts  "
              f"{result.stats['affine_warp_instructions']:,.0f}")
    print(f"  IPC (thread)       {result.ipc:.2f}")
    print(f"  energy             {energy.total * 1e6:.1f} uJ "
          f"(dynamic {energy.dynamic * 1e6:.1f})")
    if args.profile:
        print()
        print(profile(result).report())
    if args.stats:
        print()
        print(result.stats.report(args.stats if args.stats != "all" else ""))
    return 0


def _cmd_compare(args) -> int:
    use_cache = _configure_harness(args)
    config = experiment_config(args.sms)
    results = run_suite([args.benchmark.upper()], args.scale, config,
                        jobs=args.jobs, use_cache=use_cache,
                        timeout=args.timeout, retries=args.retries,
                        checkpoint=args.checkpoint,
                        retry_quarantined=args.retry_quarantined,
                        service=_service_arg(args))[args.benchmark.upper()]
    rows = []
    base_cycles = None
    for technique in ("baseline", "cae", "mta", "dac"):
        result = results[technique]
        if base_cycles is None:
            base_cycles = result.cycles
        rows.append([technique, result.cycles,
                     base_cycles / result.cycles,
                     result.stats["warp_instructions"]
                     + result.stats["affine_warp_instructions"],
                     energy_of(result).total * 1e6])
    print(ascii_table(["technique", "cycles", "speedup", "instructions",
                       "energy (uJ)"], rows,
                      f"{args.benchmark} at {args.scale} scale"))
    return 0


def _cmd_trace(args) -> int:
    tracer = Tracer(sample_interval=args.sample,
                    trace_memory=not args.no_memory)
    config = experiment_config(args.sms)
    result = run_one(args.benchmark.upper(), args.technique, args.scale,
                     config, use_cache=False, trace=tracer)
    print(f"{args.benchmark} under {args.technique} "
          f"({args.scale} scale, {args.sms} SMs): "
          f"{result.cycles:,} cycles, {len(tracer.events):,} events")
    print()
    print(stall_report(result, tracer))
    write_chrome_trace(tracer, args.out)
    print(f"\nChrome trace written to {args.out} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.csv:
        write_occupancy_csv(tracer, args.csv)
        print(f"occupancy time series written to {args.csv}")
    return 0


def _cmd_decouple(args) -> int:
    if args.file:
        with open(args.file) as handle:
            kernel = parse_kernel(handle.read())
    else:
        kernel = get(args.benchmark).launch("tiny").kernel
    program = decouple(kernel)
    print(program.summary())
    report = verify(program)
    print(report)
    if program.is_decoupled and not args.quiet:
        print("\n--- affine stream ---")
        print(program.affine.source())
        print("--- non-affine stream ---")
        print(program.nonaffine.source())
    return 0 if report.ok else 1


def _cmd_table1(args) -> int:
    print(experiment_config(args.sms).table1())
    return 0


def _cmd_area(args) -> int:
    print(area_report().table())
    return 0


#: Simulation grid each figure needs — used to prewarm caches in parallel
#: before the (serial) figure drivers assemble their tables.
_FIGURE_NEEDS = {
    "fig6": ((), ()),                 # static analysis only
    "fig16": ("all", ("baseline", "cae", "mta", "dac")),
    "fig17": ("all", ("baseline", "dac")),
    "fig18": ("compute", ("baseline", "cae", "dac")),
    "fig19": ("memory", ("dac",)),
    "fig20": ("memory", ("mta",)),
    "fig21": ("all", ("baseline", "dac")),
}


def _prewarm_figures(names, scale, config, jobs, timeout=None, retries=1,
                     checkpoint=None, retry_quarantined=False,
                     service=None) -> None:
    orders = {"all": COMPUTE_ORDER + MEMORY_ORDER,
              "compute": COMPUTE_ORDER, "memory": MEMORY_ORDER, "": []}
    tasks = []
    seen = set()
    for name in names:
        benches, techniques = _FIGURE_NEEDS.get(name, ((), ()))
        for abbr in orders.get(benches, []):
            for technique in techniques:
                if (abbr, technique) not in seen:
                    seen.add((abbr, technique))
                    tasks.append((abbr, technique, config))
    if tasks:
        from .harness.parallel import GridReport
        report = GridReport()
        run_grid(tasks, scale, jobs=jobs, timeout=timeout, retries=retries,
                 checkpoint=checkpoint, report=report,
                 retry_quarantined=retry_quarantined, service=service,
                 progress=lambda done, total, abbr, tech, _res: print(
                     f"  [{done}/{total}] {abbr}/{tech}", file=sys.stderr))
        print(f"  prewarm: {report.summary()}", file=sys.stderr)


def _cmd_figures(args) -> int:
    _configure_harness(args)
    config = experiment_config(args.sms)
    name = args.figure

    def fig17():
        data = fig17_instruction_counts(args.scale, config)
        rows = [[a, v["nonaffine"], v["affine"], v["total"]]
                for a, v in data.items()]
        return ascii_table(["bench", "non-affine", "affine", "total"], rows,
                           "Figure 17")

    def two_col(title, data):
        return ascii_table(["bench", "value"],
                           [[a, v] for a, v in data.items()], title)

    figures = {
        "fig6": lambda: fig6_report(),
        "fig16": lambda: fig16_report(fig16_speedup(args.scale, config)),
        "fig17": fig17,
        "fig18": lambda: ascii_table(
            ["bench", "CAE", "DAC"],
            [[a, v["cae"], v["dac"]]
             for a, v in fig18_coverage(args.scale, config).items()],
            "Figure 18"),
        "fig19": lambda: two_col("Figure 19",
                                 fig19_affine_loads(args.scale, config)),
        "fig20": lambda: two_col("Figure 20",
                                 fig20_mta_coverage(args.scale, config)),
        "fig21": lambda: fig21_report(fig21_energy(args.scale, config)),
    }
    names = list(figures) if name == "all" else [name]
    for key in names:
        if key not in figures:
            print(f"unknown figure {key!r}; choose from "
                  f"{', '.join(figures)} or 'all'", file=sys.stderr)
            return 2
    if args.jobs > 1:
        _prewarm_figures(names, args.scale, config, args.jobs,
                         timeout=args.timeout, retries=args.retries,
                         checkpoint=args.checkpoint,
                         retry_quarantined=args.retry_quarantined,
                         service=_service_arg(args))
    for key in names:
        print(figures[key]())
        print()
    return 0


def _parse_seeds(spec: str):
    """``"0:20"`` → range(0, 20); ``"3,7,11"`` → [3, 7, 11]; ``"5"`` → [5]."""
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return range(int(lo or 0), int(hi))
    return [int(s) for s in spec.split(",") if s]


def _cmd_faults(args) -> int:
    from .faults import FAULT_CLASSES
    from .faults.campaign import run_campaign

    if args.classes:
        classes = tuple(c.strip() for c in args.classes.split(",") if c)
        unknown = [c for c in classes if c not in FAULT_CLASSES]
        if unknown:
            print(f"unknown fault class(es) {', '.join(unknown)}; choose "
                  f"from {', '.join(FAULT_CLASSES)}", file=sys.stderr)
            return 2
    else:
        classes = FAULT_CLASSES

    def progress(done, total, cell):
        if args.verbose:
            print(f"  [{done}/{total}] seed {cell.seed} {cell.kind}: "
                  f"{cell.outcome}", file=sys.stderr)

    report = run_campaign(_parse_seeds(args.seeds), classes,
                          index=args.index, magnitude=args.magnitude,
                          safe_mode=args.safe_mode,
                          checkers=not args.no_checkers,
                          max_cycles=args.max_cycles, progress=progress)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_perf(args) -> int:
    from .harness.bench import main_perf
    return main_perf(args)


def _cmd_serve(args) -> int:
    from .harness.client import default_socket_path
    from .harness.parallel import default_jobs
    from .service.daemon import run_daemon
    socket_path = args.socket or default_socket_path()
    return run_daemon(
        socket_path,
        state_dir=args.state,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        workers=args.workers or default_jobs(),
        queue_limit=args.queue_limit,
        job_timeout=args.timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        max_strikes=args.strikes,
        drain_timeout=args.drain_timeout,
    )


def _cmd_lint(args) -> int:
    import json as json_mod

    from .analysis import lint_kernel, lint_launch
    from .workloads import BY_ABBR, get

    if args.campaign:
        from .analysis.campaign import run_campaign as run_lint_campaign
        report = run_lint_campaign(
            seeds=_parse_seeds(args.seeds),
            clean_seeds=_parse_seeds(args.clean_seeds))
        if args.json:
            print(json_mod.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    targets: list[tuple[str, object]] = []
    if args.file:
        with open(args.file) as handle:
            kernel = parse_kernel(handle.read())
        targets.append((kernel.name, kernel))
    else:
        names = [a.upper() for a in args.benchmarks] or sorted(BY_ABBR)
        unknown = [n for n in names if n not in BY_ABBR]
        if unknown:
            print(f"unknown benchmark(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        for name in names:
            targets.append((name, get(name).launch(args.scale)))

    failed = False
    results = {}
    for name, target in targets:
        if isinstance(target, Kernel):
            report = lint_kernel(target)
        else:
            report = lint_launch(target)
        results[name] = report
        if not report.ok(strict=args.strict):
            failed = True
        if not args.json:
            status = "clean" if not report.diagnostics else \
                f"{len(report.errors)} error(s), " \
                f"{len(report.warnings)} warning(s)"
            print(f"== {name}: {status}")
            for diag in report.diagnostics:
                print(f"  {diag.render()}")
    if args.sarif:
        from .analysis import LintReport, write_sarif
        merged = LintReport()
        for rep in results.values():
            merged.merge(rep)
        write_sarif(merged.finalize(), args.sarif)
        if not args.json:
            print(f"sarif report written to {args.sarif}")
    if args.json:
        print(json_mod.dumps(
            {name: rep.to_dict() for name, rep in results.items()},
            indent=2))
    elif not failed:
        print(f"lint: {len(targets)} target(s) clean"
              + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


def _cmd_certify(args) -> int:
    import json as json_mod

    from .analysis import certify_program
    from .compiler.decouple import decouple
    from .workloads import BY_ABBR, get

    if args.campaign:
        from .analysis.mutate import MUTATORS, run_mutation_campaign
        classes = None
        if args.classes:
            classes = [c.strip() for c in args.classes.split(",") if c]
            unknown = [c for c in classes if c not in MUTATORS]
            if unknown:
                print(f"unknown mutation class(es) {', '.join(unknown)}; "
                      f"choose from {', '.join(MUTATORS)}", file=sys.stderr)
                return 2
        report = run_mutation_campaign(classes=classes, seed=args.seed)
        if args.json:
            print(json_mod.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    targets: list[tuple[str, Kernel]] = []
    if args.file:
        with open(args.file) as handle:
            targets.append(("file", parse_kernel(handle.read())))
    else:
        names = [a.upper() for a in args.benchmarks]
        if not names and not args.fuzz:
            names = sorted(BY_ABBR)
        unknown = [n for n in names if n not in BY_ABBR]
        if unknown:
            print(f"unknown benchmark(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        for name in names:
            targets.append((name, get(name).launch(args.scale).kernel))
    if args.fuzz:
        from .workloads.fuzz import build_fuzz_launch
        for seed in _parse_seeds(args.fuzz):
            targets.append((f"fuzz-{seed}", build_fuzz_launch(seed).kernel))

    failed = False
    results = {}
    for name, kernel in targets:
        program = decouple(kernel)
        report = certify_program(program)
        results[name] = report
        if not report.ok(strict=args.strict):
            failed = True
        if not args.json:
            if not program.is_decoupled:
                status = "not decoupled (nothing to certify)"
            elif not report.diagnostics:
                status = (f"certified: {program.num_queues} queue(s) "
                          "proven equivalent")
            else:
                status = (f"{len(report.errors)} error(s), "
                          f"{len(report.warnings)} warning(s)")
            print(f"== {name}: {status}")
            for diag in report.diagnostics:
                print(f"  {diag.render()}")
    if args.sarif:
        from .analysis import LintReport, write_sarif
        merged = LintReport()
        for rep in results.values():
            merged.merge(rep)
        write_sarif(merged.finalize(), args.sarif,
                    tool_name="repro-certify")
        if not args.json:
            print(f"sarif report written to {args.sarif}")
    if args.json:
        print(json_mod.dumps(
            {name: rep.to_dict() for name, rep in results.items()},
            indent=2))
    elif not failed:
        print(f"certify: {len(targets)} target(s) clean"
              + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Decoupled Affine Computation (ISCA 2017) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 29 benchmarks") \
        .set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark")
    run.add_argument("--technique", default="dac",
                     choices=("baseline", "cae", "mta", "dac"))
    run.add_argument("--scale", default="tiny", choices=("tiny", "paper"))
    run.add_argument("--sms", type=int, default=4)
    run.add_argument("--stats", nargs="?", const="all",
                     help="dump raw counters (optionally a prefix)")
    run.add_argument("--profile", action="store_true",
                     help="print derived metrics (hit rates, utilization)")
    _add_harness_args(run)
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare",
                             help="baseline vs CAE vs MTA vs DAC")
    compare.add_argument("benchmark")
    compare.add_argument("--scale", default="tiny",
                         choices=("tiny", "paper"))
    compare.add_argument("--sms", type=int, default=4)
    _add_harness_args(compare)
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser(
        "trace", help="traced run: stall attribution + Chrome trace")
    trace.add_argument("benchmark")
    trace.add_argument("--technique", default="dac",
                       choices=("baseline", "cae", "mta", "dac"))
    trace.add_argument("--scale", default="tiny", choices=("tiny", "paper"))
    trace.add_argument("--sms", type=int, default=4)
    trace.add_argument("--out", default="trace.json", metavar="FILE",
                       help="Chrome trace JSON destination "
                            "(default: trace.json)")
    trace.add_argument("--csv", default=None, metavar="FILE",
                       help="also write the queue-occupancy time series")
    trace.add_argument("--sample", type=int, default=64, metavar="N",
                       help="occupancy sampling interval in cycles")
    trace.add_argument("--no-memory", action="store_true",
                       help="skip per-access cache events (smaller trace)")
    trace.set_defaults(func=_cmd_trace)

    dec = sub.add_parser("decouple", help="show a kernel's streams")
    dec.add_argument("benchmark", nargs="?")
    dec.add_argument("--file", help="assembly file instead of a benchmark")
    dec.add_argument("--quiet", action="store_true",
                     help="summary and verification only")
    dec.set_defaults(func=_cmd_decouple)

    t1 = sub.add_parser("table1", help="print the machine configuration")
    t1.add_argument("--sms", type=int, default=4)
    t1.set_defaults(func=_cmd_table1)

    sub.add_parser("area", help="DAC area overhead (§4.8)") \
        .set_defaults(func=_cmd_area)

    figs = sub.add_parser("figures", help="regenerate evaluation figures")
    figs.add_argument("figure", nargs="?", default="all")
    figs.add_argument("--scale", default="tiny", choices=("tiny", "paper"))
    figs.add_argument("--sms", type=int, default=4)
    _add_harness_args(figs)
    figs.set_defaults(func=_cmd_figures)

    faults = sub.add_parser(
        "faults", help="seeded fault-injection campaign (detect-or-survive)")
    faults.add_argument("--seeds", default="0:10", metavar="LO:HI|A,B,C",
                        help="fuzz-kernel seeds (default 0:10)")
    faults.add_argument("--classes", default=None, metavar="K1,K2",
                        help="fault classes to inject (default: all)")
    faults.add_argument("--index", type=int, default=0,
                        help="which dynamic fault site to hit (default 0)")
    faults.add_argument("--magnitude", type=int, default=1,
                        help="fault magnitude (offset words / delay scale)")
    faults.add_argument("--safe-mode", action="store_true",
                        help="roll back and replay non-decoupled when a "
                             "checker fires or the machine wedges")
    faults.add_argument("--no-checkers", action="store_true",
                        help="disable the runtime queue/expansion checkers "
                             "(faults surface via oracle or hang only)")
    faults.add_argument("--max-cycles", type=int, default=300_000,
                        help="hang bound per run (default 300000)")
    faults.add_argument("--verbose", action="store_true",
                        help="print each cell's outcome as it lands")
    faults.set_defaults(func=_cmd_faults)

    serve = sub.add_parser(
        "serve", help="run the supervised experiment daemon "
                      "(unix socket, journaled jobs, worker heartbeats)")
    serve.add_argument("--socket", default=None, metavar="SOCK",
                       help="unix socket to listen on (default: "
                            "$REPRO_SERVICE_SOCKET or service.sock next "
                            "to the disk cache)")
    serve.add_argument("--state", default=None, metavar="DIR",
                       help="journal directory (default: "
                            "$REPRO_SERVICE_STATE or a service/ dir next "
                            "to the disk cache); a restarted daemon "
                            "replays it")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="supervised worker processes "
                            "(default: $REPRO_JOBS or cpu count)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared content-hash result cache "
                            "(default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-dac)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the shared disk cache")
    serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="max admitted-but-unsettled jobs before "
                            "submissions answer busy (default 64)")
    serve.add_argument("--timeout", type=float, default=120.0,
                       metavar="S",
                       help="per-cell wall-clock bound; a worker past it "
                            "is killed, respawned, and the cell struck "
                            "(default 120)")
    serve.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       metavar="S",
                       help="kill workers whose heartbeat goes stale "
                            "(default 15)")
    serve.add_argument("--strikes", type=int, default=2, metavar="N",
                       help="circuit breaker: strikes before a cell is "
                            "quarantined (default 2)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="S",
                       help="graceful-shutdown bound for in-flight cells "
                            "(default: --timeout + 5)")
    serve.set_defaults(func=_cmd_serve)

    perf = sub.add_parser(
        "perf", help="throughput benchmark gated on Stats bit-identity")
    perf.add_argument("--quick", action="store_true",
                      help="golden matrix only (tiny scale); skips the "
                           "paper-scale throughput cells")
    perf.add_argument("--reps", type=int, default=3, metavar="N",
                      help="timing repetitions per cell; every sample is "
                           "recorded and the report shows mean, 95%% CI, "
                           "and a Welch t-test verdict vs the reference "
                           "distribution (default 3 — the floor for a "
                           "dispersion estimate)")
    perf.add_argument("--out", default=None, metavar="FILE",
                      help="bench JSON destination (default: the next "
                           "free BENCH_<n>.json at the repo root, derived "
                           "from the files already there)")
    perf.add_argument("--history", action="store_true",
                      help="summarize the BENCH_history.jsonl trajectory "
                           "and exit (no simulation)")
    perf.add_argument("--no-history", action="store_true",
                      help="skip appending this run to "
                           "BENCH_history.jsonl")
    perf.add_argument("--datapath", choices=("scalar", "vector"),
                      default="scalar",
                      help="warp datapath to benchmark (both must "
                           "reproduce the committed goldens "
                           "bit-identically; recorded per cell in the "
                           "bench JSON)")
    perf.add_argument("--issue-engine", choices=("walk", "batched"),
                      dest="issue_engine", default="walk",
                      help="timing loop to benchmark: the reference "
                           "per-warp walk or the batched readiness-column "
                           "engine (bit-identical Stats required either "
                           "way; recorded per cell in the bench JSON)")
    perf.add_argument("--profile", action="store_true",
                      help="additionally cProfile one rep per cell and "
                           "write a top-25-cumulative report (with the "
                           "timing-loop vs datapath own-time split) next "
                           "to the bench JSON")
    perf.set_defaults(func=_cmd_perf)

    lint = sub.add_parser(
        "lint", help="static diagnostics for kernels (RPL0xx codes)")
    lint.add_argument("benchmarks", nargs="*", metavar="ABBR",
                      help="benchmarks to lint (default: all 29)")
    lint.add_argument("--file", default=None,
                      help="lint an assembly file instead of a benchmark "
                           "(kernel-only passes; no launch geometry)")
    lint.add_argument("--scale", default="tiny", choices=("tiny", "paper"))
    lint.add_argument("--strict", action="store_true",
                      help="warnings also fail the run")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable output")
    lint.add_argument("--campaign", action="store_true",
                      help="differential validation: seeded defects must "
                           "trip their code AND misbehave as predicted")
    lint.add_argument("--seeds", default="0:2", metavar="LO:HI|A,B,C",
                      help="defect seeds for --campaign (default 0:2)")
    lint.add_argument("--sarif", default=None, metavar="PATH",
                      help="write findings as a SARIF 2.1.0 report")
    lint.add_argument("--clean-seeds", default="0:10",
                      metavar="LO:HI|A,B,C",
                      help="clean-corpus seeds for --campaign "
                           "(default 0:10)")
    lint.set_defaults(func=_cmd_lint)

    cert = sub.add_parser(
        "certify",
        help="prove decoupled streams equivalent to their kernel (RPL05x)")
    cert.add_argument("benchmarks", nargs="*", metavar="ABBR",
                      help="benchmarks to certify (default: all 29)")
    cert.add_argument("--file", default=None,
                      help="certify an assembly file instead of a "
                           "benchmark")
    cert.add_argument("--scale", default="tiny", choices=("tiny", "paper"))
    cert.add_argument("--fuzz", default=None, metavar="LO:HI|A,B,C",
                      help="also certify fuzz-generated kernels by seed")
    cert.add_argument("--strict", action="store_true",
                      help="missed-optimization warnings (RPL051) also "
                           "fail")
    cert.add_argument("--json", action="store_true",
                      help="emit machine-readable reports")
    cert.add_argument("--sarif", default=None, metavar="PATH",
                      help="write findings as a SARIF 2.1.0 report")
    cert.add_argument("--campaign", action="store_true",
                      help="run the seeded decoupler-mutation campaign "
                           "instead of certifying the corpus")
    cert.add_argument("--classes", default=None, metavar="A,B,C",
                      help="mutation classes for --campaign (default all)")
    cert.add_argument("--seed", type=int, default=0,
                      help="campaign site-selection seed (default 0)")
    cert.set_defaults(func=_cmd_certify)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "decouple" and not args.benchmark and not args.file:
        parser.error("decouple needs a benchmark name or --file")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
