"""The scalar / affine / non-affine type lattice used by the compiler.

Paper §4.7: "Each operand is classified as one of three possible types:
scalar (e.g. kernel parameters), affine (e.g. threadIdx), or non-affine
(e.g. memory), which are listed in order from most specific to most
general."

Because the affine warp executes once per CTA (see DESIGN.md), anything
uniform *within a block* — ``blockIdx``, ``blockDim``, ``gridDim``, kernel
parameters, immediates — is ``SCALAR``; ``threadIdx`` is ``AFFINE``; values
read from memory or produced by unsupported operations are ``NONAFFINE``.
"""

from __future__ import annotations

import enum

from ..isa import (
    AFFINE_CAPABLE_OPS,
    CmpOp,
    DeqToken,
    Immediate,
    MemRef,
    Opcode,
    Operand,
    Param,
    PredReg,
    Register,
    SpecialReg,
)


class OperandClass(enum.IntEnum):
    """Lattice ordering: SCALAR < AFFINE < NONAFFINE (join = max)."""

    SCALAR = 0
    AFFINE = 1
    NONAFFINE = 2


def join(*classes: OperandClass) -> OperandClass:
    """Least upper bound — 'the most general type' (§4.7)."""
    return max(classes, default=OperandClass.SCALAR)


def leaf_class(op: Operand) -> OperandClass | None:
    """Initial class of a non-register operand; ``None`` for registers
    (whose class comes from reaching definitions)."""
    if isinstance(op, (Immediate, Param)):
        return OperandClass.SCALAR
    if isinstance(op, SpecialReg):
        if op.family == "tid":
            return OperandClass.AFFINE
        return OperandClass.SCALAR        # ctaid / ntid / nctaid: per-CTA
    if isinstance(op, (MemRef, DeqToken)):
        return OperandClass.NONAFFINE
    if isinstance(op, (Register, PredReg)):
        return None
    raise TypeError(f"unknown operand: {op!r}")


#: Ops where affine × affine is illegal (Eq. 3: one side must be scalar).
_NEEDS_SCALAR_SIDE = {Opcode.MUL}

#: Ops that only stay affine when *every* source is scalar.
_SCALAR_ONLY = {Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHR}


def result_class(opcode: Opcode, src_classes: list[OperandClass],
                 cmp: CmpOp | None = None) -> OperandClass:
    """Transfer function: class of an instruction's destination given the
    classes of its sources.  Mirrors the runtime rules in
    :mod:`repro.affine.ops` so that anything the compiler classifies as
    affine is guaranteed to evaluate in tuple form at run time."""
    if opcode is Opcode.LD:
        return OperandClass.NONAFFINE
    if opcode not in AFFINE_CAPABLE_OPS:
        return OperandClass.NONAFFINE
    top = join(*src_classes)
    if top is OperandClass.NONAFFINE:
        return OperandClass.NONAFFINE
    if opcode in _SCALAR_ONLY:
        return (OperandClass.SCALAR if top is OperandClass.SCALAR
                else OperandClass.NONAFFINE)
    if opcode is Opcode.MUL:
        affine_sides = sum(1 for c in src_classes
                           if c is OperandClass.AFFINE)
        return (OperandClass.NONAFFINE if affine_sides > 1 else top)
    if opcode is Opcode.MAD:
        # d = a*b + c: the product needs a scalar side.
        a, b, c = src_classes
        if a is OperandClass.AFFINE and b is OperandClass.AFFINE:
            return OperandClass.NONAFFINE
        return join(a, b, c)
    if opcode is Opcode.REM:
        lhs, divisor = src_classes
        if divisor is not OperandClass.SCALAR:
            return OperandClass.NONAFFINE
        return lhs
    if opcode in (Opcode.SHL,):
        lhs, amount = src_classes
        if amount is not OperandClass.SCALAR:
            return OperandClass.NONAFFINE
        return lhs
    if opcode is Opcode.SELP:
        a, b, pred = src_classes
        if pred is not OperandClass.SCALAR:
            return OperandClass.NONAFFINE
        return join(a, b)
    if opcode is Opcode.SETP:
        return top
    return top
