"""Affine tuple algebra, predicates, and the compiler type lattice."""

from .lattice import OperandClass, join, leaf_class, result_class
from .ops import apply_op, guarded_merge
from .predicates import AffinePredicate
from .tuples import (
    AffineError,
    AffineExpr,
    AffineTuple,
    ClampExpr,
    DivergentSet,
    MAX_DIVERGENT_TUPLES,
    scalar,
)

__all__ = [
    "AffineError", "AffineExpr", "AffinePredicate", "AffineTuple",
    "ClampExpr", "DivergentSet", "MAX_DIVERGENT_TUPLES", "OperandClass",
    "apply_op", "guarded_merge", "join", "leaf_class", "result_class",
    "scalar",
]
