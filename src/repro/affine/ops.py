"""Runtime evaluation of ISA operations over affine expressions.

This is what the affine warp's "functional units" compute (paper §4.4: DAC
maps bases and offsets onto SIMT lanes, so one warp-instruction slot performs
a whole tuple operation).
"""

from __future__ import annotations

from ..isa import CmpOp, Opcode
from .predicates import AffinePredicate
from .tuples import (
    AffineError,
    AffineExpr,
    AffineTuple,
    ClampExpr,
    DivergentSet,
    _add,
    scalar,
)


def _as_scalar(expr: AffineExpr) -> float:
    if not expr.is_scalar:
        raise AffineError(f"expected scalar, got {expr}")
    return expr.scalar_value


def _mul(a: AffineExpr, b: AffineExpr) -> AffineExpr:
    if isinstance(a, AffineTuple) and isinstance(b, AffineTuple):
        return a.mul(b)
    if b.is_scalar:
        return a.scale(_as_scalar(b))
    if a.is_scalar:
        return b.scale(_as_scalar(a))
    raise AffineError("multiplication needs a scalar operand")


def _require_tuples(*exprs: AffineExpr) -> None:
    for e in exprs:
        if not isinstance(e, AffineTuple):
            raise AffineError(f"operation needs a plain tuple, got {e}")


def _clamp(op: str, a: AffineExpr, b: AffineExpr) -> AffineExpr:
    if a.is_scalar and b.is_scalar:
        va, vb = _as_scalar(a), _as_scalar(b)
        return scalar(min(va, vb) if op == "min" else max(va, vb))
    expr = ClampExpr(op, (a, b))
    if expr.depth() > 2:
        raise AffineError("clamp nesting exceeds hardware depth")
    return expr


def apply_op(opcode: Opcode, args: list, cmp: CmpOp | None = None):
    """Apply ``opcode`` to affine-expression arguments.

    ``args`` holds :class:`AffineExpr` values (and, for ``selp``, a trailing
    :class:`AffinePredicate`).  Returns an :class:`AffineExpr`, or an
    :class:`AffinePredicate` for ``setp``.  Raises :class:`AffineError` when
    the operation cannot stay in tuple form — the compiler guarantees this
    does not happen for instructions it placed in the affine stream.
    """
    if opcode is Opcode.MOV:
        return args[0]
    if opcode is Opcode.ADD:
        return _add(args[0], args[1])
    if opcode is Opcode.SUB:
        _require_tuples(args[1])
        if isinstance(args[0], AffineTuple):
            return args[0].sub(args[1])
        return args[0].add(args[1].negate())
    if opcode is Opcode.MUL:
        return _mul(args[0], args[1])
    if opcode is Opcode.MAD:
        return _add(_mul(args[0], args[1]), args[2])
    if opcode is Opcode.NEG:
        _require_tuples(args[0])
        return args[0].negate()
    if opcode is Opcode.REM:
        _require_tuples(args[0], args[1])
        return args[0].mod(args[1])
    if opcode is Opcode.SHL:
        _require_tuples(args[1])
        if isinstance(args[0], AffineTuple):
            return args[0].shl(args[1])
        return args[0].scale(float(2 ** int(_as_scalar(args[1]))))
    if opcode is Opcode.SHR:
        _require_tuples(args[0], args[1])
        return args[0].shr(args[1])
    if opcode is Opcode.MIN:
        return _clamp("min", args[0], args[1])
    if opcode is Opcode.MAX:
        return _clamp("max", args[0], args[1])
    if opcode is Opcode.ABS:
        if args[0].is_scalar:
            return scalar(abs(_as_scalar(args[0])))
        return ClampExpr("abs", (args[0],))
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
        a, b = int(_as_scalar(args[0])), int(_as_scalar(args[1]))
        ops = {Opcode.AND: a & b, Opcode.OR: a | b, Opcode.XOR: a ^ b}
        return scalar(float(ops[opcode]))
    if opcode is Opcode.NOT:
        return scalar(float(~int(_as_scalar(args[0]))))
    if opcode is Opcode.SETP:
        return AffinePredicate(cmp, args[0], args[1])
    if opcode is Opcode.SELP:
        pred = args[2]
        if isinstance(pred, AffinePredicate) and pred.is_scalar:
            return args[0] if pred.scalar_value else args[1]
        raise AffineError("selp with a non-scalar predicate is not decoupled")
    raise AffineError(f"opcode {opcode.value} is not affine-computable")


def guarded_merge(alternatives: list[tuple[int | None, AffineExpr]]):
    """Build a :class:`DivergentSet` from guarded reaching definitions
    (§4.6), collapsing to the single expression when all agree."""
    exprs = {str(e) for _, e in alternatives}
    if len(exprs) == 1:
        return alternatives[0][1]
    return DivergentSet(tuple(alternatives))
