"""Affine tuple algebra (paper §3, §4.4, §4.6).

An affine operand's per-thread value is ``base + Σ_d offset_d · tid_d`` where
``d`` ranges over the up-to-3 thread-index dimensions.  Following the design
decision in DESIGN.md, the block index contribution is folded into ``base``
(the AEU recomputes the base once per CTA, Fig. 11 ①), so a tuple carries one
base plus three thread-dimension offsets.

Three expression forms exist:

* :class:`AffineTuple` — the plain linear form, optionally carrying the
  mod-type extension fields ``(mod_base, divisor)`` of §4.4, in which case
  the value is ``base + ((mod_base + Σ offset·tid) mod divisor)``.
* :class:`ClampExpr` — ``min``/``max``/``abs``/``selp`` over affine operands
  (§4.6 "instructions that incorporate both value assignment and
  predication").
* :class:`DivergentSet` — up to four guarded tuples produced by control-flow
  divergence (§4.6); the guard is a DCRF condition id resolved per thread at
  expansion time.

All forms can be *evaluated* into concrete per-thread values; the simple
forms can also participate in further affine arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: §4.6: at most 2 divergent conditions — hence at most 4 guarded tuples —
#: may influence a decoupled operand.
MAX_DIVERGENT_TUPLES = 4


class AffineError(Exception):
    """An operation is not expressible in affine-tuple form."""


@dataclass(frozen=True)
class AffineTuple:
    """``base + Σ offsets[d]·tid[d]``, optionally modulo-adjusted (§4.4)."""

    base: float
    offsets: tuple[float, float, float] = (0.0, 0.0, 0.0)
    mod_base: float = 0.0
    divisor: float = 0.0          # 0 means "not a mod-type tuple"

    # ---- classification ------------------------------------------------

    @property
    def is_mod(self) -> bool:
        return self.divisor != 0.0

    @property
    def is_scalar(self) -> bool:
        """All threads share one value (offset 0 in every dimension)."""
        return not self.is_mod and all(o == 0.0 for o in self.offsets)

    @property
    def scalar_value(self) -> float:
        if not self.is_scalar:
            raise AffineError("tuple is not scalar")
        return self.base

    # ---- evaluation ----------------------------------------------------

    def evaluate(self, tx: np.ndarray, ty: np.ndarray,
                 tz: np.ndarray) -> np.ndarray:
        """Concrete per-thread values for the given thread-index arrays."""
        lin = (self.offsets[0] * tx + self.offsets[1] * ty
               + self.offsets[2] * tz)
        if self.is_mod:
            return self.base + np.mod(self.mod_base + lin, self.divisor)
        return self.base + lin

    def value_at(self, tx: float, ty: float = 0.0, tz: float = 0.0) -> float:
        lin = (self.offsets[0] * tx + self.offsets[1] * ty
               + self.offsets[2] * tz)
        if self.is_mod:
            return self.base + float(np.mod(self.mod_base + lin,
                                            self.divisor))
        return self.base + lin

    # ---- arithmetic (paper Eq. 2 and 3, §4.4 mod rules) -----------------

    def add(self, other: "AffineTuple") -> "AffineTuple":
        if self.is_mod and other.is_mod:
            raise AffineError("cannot add two mod-type tuples")
        if self.is_mod or other.is_mod:
            mod, plain = (self, other) if self.is_mod else (other, self)
            if not plain.is_scalar:
                raise AffineError("mod-type tuple only adds with a scalar")
            return AffineTuple(mod.base + plain.base, mod.offsets,
                               mod.mod_base, mod.divisor)
        return AffineTuple(
            self.base + other.base,
            tuple(a + b for a, b in zip(self.offsets, other.offsets)))

    def negate(self) -> "AffineTuple":
        if self.is_mod:
            raise AffineError("cannot negate a mod-type tuple")
        return AffineTuple(-self.base, tuple(-o for o in self.offsets))

    def sub(self, other: "AffineTuple") -> "AffineTuple":
        if other.is_mod:
            raise AffineError("cannot subtract a mod-type tuple")
        return self.add(other.negate())

    def scale(self, factor: float) -> "AffineTuple":
        """Multiply by a scalar.  Mod-type tuples scale every field,
        including the divisor (§4.4)."""
        if self.is_mod:
            if factor < 0:
                raise AffineError("mod-type tuples scale by >= 0 only")
            if factor == 0:
                return AffineTuple(0.0)
            return AffineTuple(self.base * factor,
                               tuple(o * factor for o in self.offsets),
                               self.mod_base * factor,
                               self.divisor * factor)
        return AffineTuple(self.base * factor,
                           tuple(o * factor for o in self.offsets))

    def mul(self, other: "AffineTuple") -> "AffineTuple":
        """Multiplication: at least one side must be scalar (Eq. 3)."""
        if other.is_scalar:
            return self.scale(other.base)
        if self.is_scalar:
            return other.scale(self.base)
        raise AffineError("multiplication of two non-scalar affine operands")

    def mod(self, divisor: "AffineTuple") -> "AffineTuple":
        """``self mod divisor`` with a scalar positive divisor (§4.4)."""
        if self.is_mod:
            raise AffineError("cannot re-mod a mod-type tuple")
        if not divisor.is_scalar or divisor.base <= 0:
            raise AffineError("mod divisor must be a positive scalar")
        m = divisor.base
        if self.is_scalar:
            return AffineTuple(float(np.mod(self.base, m)))
        return AffineTuple(0.0, self.offsets,
                           mod_base=float(np.mod(self.base, m)), divisor=m)

    def shl(self, amount: "AffineTuple") -> "AffineTuple":
        if not amount.is_scalar:
            raise AffineError("shift amount must be scalar")
        return self.scale(float(2 ** int(amount.base)))

    def shr(self, amount: "AffineTuple") -> "AffineTuple":
        """Right shift: exact only when base and offsets are divisible by
        ``2**amount`` — the affine warp checks the concrete values and falls
        back to non-affine execution otherwise (the compiler keeps such
        instructions out of the affine stream for our workloads)."""
        if not amount.is_scalar:
            raise AffineError("shift amount must be scalar")
        if self.is_mod:
            raise AffineError("cannot shift a mod-type tuple")
        if self.is_scalar:
            # Scalar >> scalar is an exact integer shift.
            return AffineTuple(float(int(self.base) >> int(amount.base)))
        div = float(2 ** int(amount.base))
        fields = (self.base, *self.offsets)
        if any(f % div for f in fields):
            raise AffineError("right shift with carries is not affine")
        return AffineTuple(self.base / div,
                           tuple(o / div for o in self.offsets))

    def __str__(self) -> str:
        if self.is_mod:
            return (f"({self.base:g}, {self.offsets}, "
                    f"mod {self.mod_base:g} % {self.divisor:g})")
        return f"({self.base:g}, {self.offsets})"


def scalar(value: float) -> AffineTuple:
    """A scalar tuple: every thread sees the same value."""
    return AffineTuple(float(value))


@dataclass(frozen=True)
class ClampExpr:
    """``min``/``max``/``abs``/``selp`` over affine operands (§4.6).

    These ops fold predication into value assignment, so the result is no
    longer a single linear tuple; it stays cheaply expandable because the
    PEU-style endpoint test resolves each warp with two comparisons.
    """

    op: str                               # "min" | "max" | "abs" | "selp"
    args: tuple["AffineExpr", ...]

    def __post_init__(self) -> None:
        if self.op not in ("min", "max", "abs", "selp"):
            raise AffineError(f"unsupported clamp op: {self.op}")

    @property
    def is_scalar(self) -> bool:
        return all(a.is_scalar for a in self.args)

    @property
    def scalar_value(self) -> float:
        return float(self.evaluate(np.zeros(1), np.zeros(1), np.zeros(1))[0])

    def evaluate(self, tx, ty, tz) -> np.ndarray:
        vals = [a.evaluate(tx, ty, tz) for a in self.args]
        if self.op == "min":
            return np.minimum(vals[0], vals[1])
        if self.op == "max":
            return np.maximum(vals[0], vals[1])
        if self.op == "abs":
            return np.abs(vals[0])
        # selp: args = (then, else, cond) with cond > 0.5 meaning true.
        return np.where(vals[2] > 0.5, vals[0], vals[1])

    def add(self, other: "AffineExpr") -> "ClampExpr":
        """Adding a tuple distributes into min/max/selp branches (pointwise
        ``min(a,b) + t == min(a+t, b+t)``); abs does not distribute."""
        if self.op == "abs" or isinstance(other, (ClampExpr, DivergentSet)):
            raise AffineError(f"cannot add {other} to {self.op} expression")
        if self.op == "selp":
            then, other_branch, cond = self.args
            return ClampExpr("selp",
                             (_add(then, other), _add(other_branch, other),
                              cond))
        return ClampExpr(self.op, tuple(_add(a, other) for a in self.args))

    def scale(self, factor: float) -> "ClampExpr":
        if self.op == "abs":
            if factor < 0:
                raise AffineError("cannot scale abs by a negative")
            return ClampExpr("abs", tuple(_scale(a, factor)
                                          for a in self.args))
        op = self.op
        if factor < 0 and op in ("min", "max"):
            op = "max" if op == "min" else "min"
        if op == "selp":
            then, other_branch, cond = self.args
            return ClampExpr("selp", (_scale(then, factor),
                                      _scale(other_branch, factor), cond))
        return ClampExpr(op, tuple(_scale(a, factor) for a in self.args))

    def depth(self) -> int:
        return 1 + max((a.depth() if isinstance(a, ClampExpr) else 0)
                       for a in self.args)

    def __str__(self) -> str:
        return f"{self.op}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class DivergentSet:
    """Guarded alternative tuples from control-flow divergence (§4.6).

    Each alternative is ``(condition_id, expr)``; ``condition_id`` indexes a
    DCRF entry whose per-thread bit vector says which threads take that
    alternative.  ``None`` marks the default (fall-through) alternative.
    """

    alternatives: tuple[tuple[int | None, "AffineExpr"], ...]

    def __post_init__(self) -> None:
        if not 2 <= len(self.alternatives) <= MAX_DIVERGENT_TUPLES:
            raise AffineError(
                f"divergent set must have 2..{MAX_DIVERGENT_TUPLES} "
                f"alternatives, got {len(self.alternatives)}")

    @property
    def is_scalar(self) -> bool:
        return False

    def add(self, other: "AffineExpr") -> "DivergentSet":
        return DivergentSet(tuple((c, _add(e, other))
                                  for c, e in self.alternatives))

    def scale(self, factor: float) -> "DivergentSet":
        return DivergentSet(tuple((c, _scale(e, factor))
                                  for c, e in self.alternatives))

    def evaluate_with(self, tx, ty, tz, condition_bits) -> np.ndarray:
        """Evaluate choosing per-thread alternatives.

        ``condition_bits`` maps condition_id -> bool array over threads.
        Alternatives are tried in order; the default (``None``) catches the
        remaining threads.
        """
        out = np.zeros_like(tx, dtype=np.float64)
        remaining = np.ones_like(tx, dtype=bool)
        for cond_id, expr in self.alternatives:
            mask = (remaining if cond_id is None
                    else remaining & condition_bits[cond_id])
            if mask.any():
                if isinstance(expr, DivergentSet):
                    # A divergent value written under divergence nests; its
                    # guards were snapshotted at creation, so recursion with
                    # the same DCRF is exact.
                    values = expr.evaluate_with(tx, ty, tz, condition_bits)
                else:
                    values = expr.evaluate(tx, ty, tz)
                out[mask] = values[mask]
            remaining &= ~mask
        return out

    def leaf_count(self) -> int:
        """Total guarded tuples, flattening nesting — the quantity the
        hardware's 4-tuple budget (§4.6) bounds."""
        total = 0
        for _, expr in self.alternatives:
            total += (expr.leaf_count() if isinstance(expr, DivergentSet)
                      else 1)
        return total

    def __str__(self) -> str:
        alts = ", ".join(f"[c{c}] {e}" for c, e in self.alternatives)
        return f"{{{alts}}}"


AffineExpr = AffineTuple | ClampExpr | DivergentSet


def _add(a: AffineExpr, b: AffineExpr) -> AffineExpr:
    if isinstance(a, AffineTuple) and isinstance(b, AffineTuple):
        return a.add(b)
    if isinstance(a, (ClampExpr, DivergentSet)):
        return a.add(b)
    if isinstance(b, (ClampExpr, DivergentSet)):
        return b.add(a)
    raise AffineError(f"cannot add {a} and {b}")


def _scale(a: AffineExpr, factor: float) -> AffineExpr:
    return a.scale(factor)
