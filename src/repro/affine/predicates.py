"""Affine predicates: comparisons between affine expressions.

A decoupled ``setp`` produces an :class:`AffinePredicate` in the affine
stream.  If both sides are scalar the predicate is a single bool for the
whole CTA (64 % of decoupled predicate computations in the paper, §4.3);
otherwise the PEU expands it per warp with the endpoint trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..isa import CmpOp
from .tuples import AffineError, AffineExpr, DivergentSet

_CMP_FUNCS = {
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
}

_NEGATED = {
    CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE, CmpOp.GE: CmpOp.LT,
    CmpOp.LE: CmpOp.GT, CmpOp.GT: CmpOp.LE,
}


@dataclass(frozen=True)
class AffinePredicate:
    """``lhs <cmp> rhs`` over affine expressions."""

    cmp: CmpOp
    lhs: AffineExpr
    rhs: AffineExpr

    def __post_init__(self) -> None:
        if isinstance(self.lhs, DivergentSet) or \
                isinstance(self.rhs, DivergentSet):
            raise AffineError("predicates over divergent sets not supported")

    # Cached: the PEU's scalar tier and the affine warp's scalar branches
    # consult these on every expansion/step, and the operands are frozen
    # (cached_property writes the instance __dict__ directly, which a
    # frozen dataclass permits).

    @cached_property
    def is_scalar(self) -> bool:
        """True when one comparison decides every thread of the CTA."""
        return self.lhs.is_scalar and self.rhs.is_scalar

    @cached_property
    def scalar_value(self) -> bool:
        if not self.is_scalar:
            raise AffineError("predicate is not scalar")
        return bool(_CMP_FUNCS[self.cmp](self.lhs.scalar_value,
                                         self.rhs.scalar_value))

    def negated(self) -> "AffinePredicate":
        return AffinePredicate(_NEGATED[self.cmp], self.lhs, self.rhs)

    def evaluate(self, tx: np.ndarray, ty: np.ndarray,
                 tz: np.ndarray) -> np.ndarray:
        """Concrete per-thread bit vector."""
        return _CMP_FUNCS[self.cmp](self.lhs.evaluate(tx, ty, tz),
                                    self.rhs.evaluate(tx, ty, tz))

    def endpoint_applicable(self) -> bool:
        """Whether the §4.3 endpoint trick is valid: both sides must be
        plain linear tuples (mod-type tuples wrap within a warp, and clamp
        expressions are not monotonic), and the comparison must be an
        ordering test — equality can flip in the middle of a warp."""
        from .tuples import AffineTuple
        if self.cmp in (CmpOp.EQ, CmpOp.NE):
            return (isinstance(self.lhs, AffineTuple) and self.lhs.is_scalar
                    and isinstance(self.rhs, AffineTuple)
                    and self.rhs.is_scalar)
        return (isinstance(self.lhs, AffineTuple) and not self.lhs.is_mod
                and isinstance(self.rhs, AffineTuple) and not self.rhs.is_mod)

    def endpoint_uniform(self, first: tuple[float, float, float],
                         last: tuple[float, float, float]) -> bool | None:
        """The PEU endpoint trick (§4.3): if the first and the last thread of
        a warp agree, every thread in between agrees too (the affine operand
        changes monotonically across the warp).  Returns the shared bool, or
        ``None`` when the endpoints disagree (mixed warp) or the trick does
        not apply to these operands."""
        if not self.endpoint_applicable():
            return None
        lo = bool(_CMP_FUNCS[self.cmp](self.lhs.value_at(*first),
                                       self.rhs.value_at(*first)))
        hi = bool(_CMP_FUNCS[self.cmp](self.lhs.value_at(*last),
                                       self.rhs.value_at(*last)))
        return lo if lo == hi else None

    def __str__(self) -> str:
        return f"({self.lhs} {self.cmp.value} {self.rhs})"
