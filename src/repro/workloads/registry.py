"""Benchmark registry: the paper's Table 2."""

from __future__ import annotations

from .base import Benchmark
from .compute import COMPUTE_BENCHMARKS
from .memory import MEMORY_BENCHMARKS

ALL_BENCHMARKS: list[Benchmark] = COMPUTE_BENCHMARKS + MEMORY_BENCHMARKS

BY_ABBR: dict[str, Benchmark] = {b.abbr: b for b in ALL_BENCHMARKS}

#: Presentation order used by the paper's figures.
MEMORY_ORDER = ["BFS", "BT", "CFD", "CS", "HI", "IMG", "KM", "LBM", "LIB",
                "LUD", "MC", "MT", "SC", "SG", "SP", "SPV", "SR2", "ST"]
COMPUTE_ORDER = ["AES", "BP", "BS", "CP", "FFT", "HS", "MQ", "PF", "SR1",
                 "STO", "TP"]


def get(abbr: str) -> Benchmark:
    try:
        return BY_ABBR[abbr.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {abbr!r}; known: "
            f"{', '.join(sorted(BY_ABBR))}") from None


def by_category(category: str) -> list[Benchmark]:
    if category not in ("compute", "memory"):
        raise ValueError("category must be 'compute' or 'memory'")
    order = COMPUTE_ORDER if category == "compute" else MEMORY_ORDER
    return [BY_ABBR[a] for a in order]


def table2() -> str:
    """Render Table 2."""
    lines = ["Compute Intensive"]
    for b in by_category("compute"):
        lines.append(f"  {b.abbr:4s} {b.name:28s} {b.suite}")
    lines.append("Memory Intensive")
    for b in by_category("memory"):
        lines.append(f"  {b.abbr:4s} {b.name:28s} {b.suite}")
    return "\n".join(lines)
