"""The 29 benchmark workloads (paper Table 2)."""

from .base import Benchmark, SCALES
from .registry import (
    ALL_BENCHMARKS,
    BY_ABBR,
    COMPUTE_ORDER,
    MEMORY_ORDER,
    by_category,
    get,
    table2,
)

__all__ = [
    "ALL_BENCHMARKS", "BY_ABBR", "Benchmark", "COMPUTE_ORDER",
    "MEMORY_ORDER", "SCALES", "by_category", "get", "table2",
]
