"""Shared infrastructure for the 29 benchmark kernels (paper Table 2).

Each benchmark is a synthetic kernel with the same access / compute /
control *structure* as its namesake (see DESIGN.md's substitution table):
the affine-vs-indirect mix of its addresses, its loop shapes, its use of
shared memory and barriers, and its ALU-to-load ratio.  Inputs are
deterministic (fixed seeds) so runs are reproducible and techniques can be
compared on identical memory images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..isa import Kernel, parse_kernel
from ..sim.launch import KernelLaunch

#: Grid-size presets.  ``tiny`` keeps unit/integration tests fast; ``paper``
#: is what the experiment harness and benches run.
SCALES = ("tiny", "paper")

#: Standard prologue: the global thread id along x (paper Fig. 4b).
TID_X = """
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
"""

#: 2-D global coordinates for stencil kernels.
TID_XY = """
    mul r0, %ctaid.x, %ntid.x;
    add gx, %tid.x, r0;
    mul r1, %ctaid.y, %ntid.y;
    add gy, %tid.y, r1;
"""


@dataclass(frozen=True)
class Benchmark:
    """One Table 2 benchmark."""

    abbr: str
    name: str
    suite: str                    # G / R / C / P as in Table 2
    category: str                 # 'compute' or 'memory'
    build: Callable[[str], KernelLaunch]
    description: str = ""

    def launch(self, scale: str = "paper") -> KernelLaunch:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; use one of {SCALES}")
        return self.build(scale)


def rng_for(abbr: str) -> np.random.Generator:
    seed = int.from_bytes(abbr.encode(), "little") % (2 ** 31)
    return np.random.default_rng(seed)


def kernel(source: str, name: str, params: tuple[str, ...]) -> Kernel:
    return parse_kernel(source, name=name, params=params)


def pick(scale: str, tiny, paper):
    return tiny if scale == "tiny" else paper
