"""Seeded random mini-kernel generator for differential testing.

:func:`build_fuzz_launch` produces a small random kernel — affine loads,
indirect loads, data-dependent branches, loops, barriers, atomics — whose
final memory image is *deterministic*: every arithmetic op in the pool is
exact over the integers representable in float64, every store lands in a
thread-exclusive slot, and the only shared writes are order-independent
integer atomic adds.  That makes the functional interpreter's memory image
a bit-exact oracle for every timing model (baseline, CAE, MTA, DAC).

The same seed always yields the same kernel over a fresh
:class:`GlobalMemory`, so each simulation gets an identical, independent
memory image.
"""

from __future__ import annotations

import numpy as np

from ..isa import CmpOp, KernelBuilder, Opcode
from ..sim.launch import GlobalMemory, KernelLaunch

#: Bound applied (via ``rem``) after every multiply so values stay far from
#: 2**53, where float64 stops being exact over the integers.
_CLAMP = 8191

#: Histogram slots targeted by the atomic-add segment.
_HIST = 16


def build_fuzz_launch(seed: int) -> KernelLaunch:
    """One random mini-kernel launch; identical for identical seeds."""
    rng = np.random.default_rng(seed)
    num_ctas = int(rng.integers(1, 3))
    warps_per_cta = int(rng.integers(1, 3))
    n = num_ctas * warps_per_cta * 32

    mem = GlobalMemory(1 << 16)
    a_vals = rng.integers(0, 64, size=n + 16)
    a_base = mem.alloc_array(a_vals.astype(np.float64))
    b_idx = a_base + 4 * rng.integers(0, n, size=n)
    b_base = mem.alloc_array(b_idx.astype(np.float64))
    h_base = mem.alloc_array(np.zeros(_HIST))
    o_base = mem.alloc_array(np.zeros(n))

    b = KernelBuilder(f"fuzz{seed}", params=("A", "B", "O", "H", "n"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4)
    acc = b.mov(0, name="acc")                 # mutable accumulator
    vals = [tid, b.load(b.add(b.param("A"), off))]

    def rand_val():
        return vals[int(rng.integers(0, len(vals)))]

    def rand_alu():
        kind = int(rng.integers(0, 7))
        x = rand_val()
        y = (rand_val() if rng.random() < 0.5
             else int(rng.integers(1, 32)))
        if kind == 0:
            v = b.add(x, y)
        elif kind == 1:
            v = b.sub(x, y)
        elif kind == 2:
            v = b.rem(b.mul(x, y), _CLAMP)
        elif kind == 3:
            v = b.min(x, y)
        elif kind == 4:
            v = b.max(x, y)
        elif kind == 5:
            v = b.rem(x, int(rng.integers(2, 64)))
        else:
            v = b.unary(Opcode.ABS, x)
        vals.append(v)

    def rand_pred():
        cmps = (CmpOp.LT, CmpOp.GE, CmpOp.EQ, CmpOp.NE)
        cmp = cmps[int(rng.integers(0, len(cmps)))]
        return b.setp(cmp, rand_val(), int(rng.integers(0, 48)))

    for _ in range(int(rng.integers(4, 10))):
        seg = int(rng.integers(0, 8))
        if seg <= 2:                                   # plain ALU chatter
            rand_alu()
        elif seg == 3:                                 # affine load
            disp = 4 * int(rng.integers(0, 16))
            vals.append(b.load(b.add(b.param("A"), off), disp))
        elif seg == 4:                                 # indirect load
            ptr = b.load(b.add(b.param("B"), off))
            vals.append(b.load(ptr))
        elif seg == 5:                                 # divergent branch
            with b.if_then(rand_pred()):
                for _ in range(int(rng.integers(1, 3))):
                    b.assign(acc, b.rem(b.add(acc, rand_val()), _CLAMP))
        elif seg == 6:                                 # small loop
            b.loop_counter(int(rng.integers(2, 5)))
            b.assign(acc, b.rem(b.add(acc, rand_val()), _CLAMP))
            b.end_loop()
        else:                                          # barrier (top level)
            b.barrier()

    # Order-independent shared write: integer +1 into a histogram slot.
    slot = b.rem(rand_val(), _HIST)
    b.atomic_add(b.add(b.param("H"), b.mul(slot, 4)), 1)

    # Round-trip through the thread's private output slot, then fold the
    # value pool into it.
    o_addr = b.add(b.param("O"), off)
    b.store(o_addr, acc)
    total = b.load(o_addr)
    for v in vals[-4:]:
        total = b.rem(b.add(total, v), 1 << 20)
    b.store(o_addr, total)

    return KernelLaunch(
        kernel=b.build(),
        grid_dim=(num_ctas, 1, 1),
        block_dim=(32 * warps_per_cta, 1, 1),
        params={"A": a_base, "B": b_base, "O": o_base, "H": h_base,
                "n": n},
        memory=mem,
    )
