"""The 11 compute-intensive benchmarks (paper Table 2).

Each synthetic kernel mirrors the compute/memory/control structure of its
namesake; see the module docstring of :mod:`repro.workloads.base`.  Grids
use large CTAs (8 warps) at high occupancy so the baseline is issue-bound —
the regime where DAC's warp-instruction reduction, and CAE's off-lane affine
units, turn into speedup.  Loop bodies carry the address/index arithmetic
that dominates real kernels (paper Fig. 6: about half of static
instructions compute on scalars and thread IDs).
"""

from __future__ import annotations

from ..sim.launch import GlobalMemory, KernelLaunch
from .base import Benchmark, TID_X, TID_XY, kernel, pick, rng_for

# --------------------------------------------------------------------------
# CP: coulombic potential — scalar atom loop, heavy FP per iteration.

_CP = kernel(TID_X + """
    mul px, tid, 3;
    mul py, tid, 5;
    mov acc, 0;
    mov j, 0;
LOOP:
    mul r2, j, 16;
    add r3, r2, param.aoff;
    add aaddr, param.atoms, r3;
    ld.global ax, [aaddr];
    ld.global ay, [aaddr+4];
    ld.global aq, [aaddr+12];
    sub dx, px, ax;
    sub dy, py, ay;
    mul dx2, dx, dx;
    mad r4, dy, dy, dx2;
    add r4, r4, 1;
    sqrt r5, r4;
    rcp r6, r5;
    mul r6, r6, 0.5;
    mad acc, aq, r6, acc;
    add j, j, 1;
    setp.lt p0, j, param.natoms;
    @p0 bra LOOP;
    mul r7, tid, 4;
    add oaddr, param.out, r7;
    st.global [oaddr], acc;
""", "cp", ("atoms", "aoff", "out", "natoms"))


def _build_cp(scale: str) -> KernelLaunch:
    blocks, threads, natoms = pick(scale, (2, 64, 6), (8, 256, 40))
    rng = rng_for("CP")
    mem = GlobalMemory()
    atoms = mem.alloc_array(rng.integers(0, 50, natoms * 4))
    out = mem.alloc(blocks * threads)
    return KernelLaunch(_CP, (blocks, 1, 1), (threads, 1, 1),
                        dict(atoms=atoms, aoff=0, out=out, natoms=natoms),
                        mem)


# --------------------------------------------------------------------------
# STO: StoreGPU sliding-window hashing — integer mixing rounds over a
# window of words re-loaded per round at affine offsets.

_STO = kernel(TID_X + """
    mul r1, tid, 16;
    add inaddr, param.inp, r1;
    ld.global w0, [inaddr];
    ld.global w1, [inaddr+4];
    mov d2, 0;
    mov j, 0;
LOOP:
    shl t0, w0, 3;
    shr t1, w1, 5;
    xor w0, t0, w1;
    xor w1, t1, w0;
    add w0, w0, j;
    and w0, w0, 1048575;
    and w1, w1, 1048575;
    add d2, d2, w0;
    and d2, d2, 1048575;
    add j, j, 1;
    setp.lt p0, j, param.rounds;
    @p0 bra LOOP;
    mul r2, tid, 4;
    add r3, r2, param.ooff;
    add oaddr, param.out, r3;
    st.global [oaddr], d2;
""", "sto", ("inp", "out", "ooff", "rounds"))


def _build_sto(scale: str) -> KernelLaunch:
    blocks, threads, rounds = pick(scale, (2, 64, 6), (8, 256, 36))
    rng = rng_for("STO")
    mem = GlobalMemory()
    n = blocks * threads
    inp = mem.alloc_array(rng.integers(0, 1 << 20, n * 4))
    out = mem.alloc(n)
    return KernelLaunch(_STO, (blocks, 1, 1), (threads, 1, 1),
                        dict(inp=inp, out=out, ooff=0, rounds=rounds), mem)


# --------------------------------------------------------------------------
# AES: table-lookup rounds — data-dependent (non-affine) table addresses
# mixed with affine round-key loads.

_AES = kernel(TID_X + """
    mul r1, tid, 4;
    add saddr, param.inp, r1;
    ld.global state, [saddr];
    mov j, 0;
LOOP:
    and idx, state, 255;
    mul r2, idx, 4;
    add taddr, param.tbox, r2;
    ld.global tval, [taddr];
    mul r3, j, 4;
    add kaddr, param.rkey, r3;
    ld.global kv, [kaddr];
    xor state, state, tval;
    xor state, state, kv;
    shl r4, state, 1;
    shr r5, state, 7;
    xor state, r4, r5;
    and state, state, 16777215;
    add j, j, 1;
    setp.lt p0, j, param.rounds;
    @p0 bra LOOP;
    add oaddr, param.out, r1;
    st.global [oaddr], state;
""", "aes", ("inp", "tbox", "rkey", "out", "rounds"))


def _build_aes(scale: str) -> KernelLaunch:
    blocks, threads, rounds = pick(scale, (2, 64, 4), (8, 256, 20))
    rng = rng_for("AES")
    mem = GlobalMemory()
    n = blocks * threads
    inp = mem.alloc_array(rng.integers(0, 1 << 24, n))
    tbox = mem.alloc_array(rng.integers(0, 1 << 24, 256))
    rkey = mem.alloc_array(rng.integers(0, 1 << 24, rounds))
    out = mem.alloc(n)
    return KernelLaunch(_AES, (blocks, 1, 1), (threads, 1, 1),
                        dict(inp=inp, tbox=tbox, rkey=rkey, out=out,
                             rounds=rounds), mem)


# --------------------------------------------------------------------------
# MQ: mri-q — trig-heavy accumulation over shared k-space samples.

_MQ = kernel(TID_X + """
    mul x, tid, 2;
    mul y, tid, 3;
    mov qr, 0;
    mov qi, 0;
    mov j, 0;
LOOP:
    mul r2, j, 12;
    add kaddr, param.ksp, r2;
    ld.global kx, [kaddr];
    ld.global ky, [kaddr+4];
    ld.global kph, [kaddr+8];
    mul arg, kx, x;
    mad arg, ky, y, arg;
    sin sr, arg;
    cos cr, arg;
    mul t0, kph, sr;
    mul t1, kph, cr;
    add qr, qr, t1;
    add qi, qi, t0;
    add j, j, 1;
    setp.lt p0, j, param.nk;
    @p0 bra LOOP;
    mul r3, tid, 4;
    add oaddr, param.qre, r3;
    st.global [oaddr], qr;
    add oaddr2, param.qim, r3;
    st.global [oaddr2], qi;
""", "mq", ("ksp", "qre", "qim", "nk"))


def _build_mq(scale: str) -> KernelLaunch:
    blocks, threads, nk = pick(scale, (2, 64, 5), (8, 256, 32))
    rng = rng_for("MQ")
    mem = GlobalMemory()
    n = blocks * threads
    ksp = mem.alloc_array(rng.uniform(0, 2, nk * 3))
    qre = mem.alloc(n)
    qim = mem.alloc(n)
    return KernelLaunch(_MQ, (blocks, 1, 1), (threads, 1, 1),
                        dict(ksp=ksp, qre=qre, qim=qim, nk=nk), mem)


# --------------------------------------------------------------------------
# TP: tpacf — dot products against shared points with data-dependent binning.

_TP = kernel(TID_X + """
    mul r1, tid, 12;
    add paddr, param.pts, r1;
    ld.global x1, [paddr];
    ld.global y1, [paddr+4];
    ld.global z1, [paddr+8];
    mov b0, 0;
    mov b1, 0;
    mov b2, 0;
    mov j, 0;
LOOP:
    mul r2, j, 12;
    add r3, r2, param.poff;
    add qaddr, param.pts2, r3;
    ld.global x2, [qaddr];
    ld.global y2, [qaddr+4];
    ld.global z2, [qaddr+8];
    mul d0, x1, x2;
    mad d0, y1, y2, d0;
    mad d0, z1, z2, d0;
    setp.gt p1, d0, 500;
    @p1 add b0, b0, 1;
    setp.le p2, d0, 100;
    @p2 add b1, b1, 1;
    add b2, b2, 1;
    add j, j, 1;
    setp.lt p0, j, param.npts;
    @p0 bra LOOP;
    add oaddr, param.bins, r1;
    st.global [oaddr], b0;
    st.global [oaddr+4], b1;
    st.global [oaddr+8], b2;
""", "tp", ("pts", "pts2", "poff", "bins", "npts"))


def _build_tp(scale: str) -> KernelLaunch:
    blocks, threads, npts = pick(scale, (2, 64, 5), (8, 256, 28))
    rng = rng_for("TP")
    mem = GlobalMemory()
    n = blocks * threads
    pts = mem.alloc_array(rng.integers(0, 20, n * 3))
    pts2 = mem.alloc_array(rng.integers(0, 20, npts * 3))
    bins = mem.alloc(n * 3)
    return KernelLaunch(_TP, (blocks, 1, 1), (threads, 1, 1),
                        dict(pts=pts, pts2=pts2, poff=0, bins=bins,
                             npts=npts), mem)


# --------------------------------------------------------------------------
# FFT: butterfly stages — XOR partner addressing (non-affine) mixed with
# affine twiddle-table loads.

_FFT = kernel(TID_X + """
    mul r1, tid, 4;
    add vaddr, param.data, r1;
    ld.global vre, [vaddr];
    mov s, 0;
LOOP:
    shl stride, 1, s;
    xor pidx, tid, stride;
    mul r2, pidx, 4;
    add paddr, param.data, r2;
    ld.global pre, [paddr];
    mul r3, s, param.nbytes;
    add r4, r3, r1;
    add twaddr, param.tw, r4;
    ld.global tw, [twaddr];
    mul t0, pre, tw;
    sub t1, vre, t0;
    mad vre, vre, 0.5, t1;
    add s, s, 1;
    setp.lt p0, s, param.stages;
    @p0 bra LOOP;
    add oaddr, param.out, r1;
    st.global [oaddr], vre;
""", "fft", ("data", "tw", "out", "nbytes", "stages"))


def _build_fft(scale: str) -> KernelLaunch:
    blocks, threads, stages = pick(scale, (2, 64, 3), (8, 256, 10))
    rng = rng_for("FFT")
    mem = GlobalMemory()
    n = blocks * threads
    data = mem.alloc_array(rng.uniform(-1, 1, n))
    tw = mem.alloc_array(rng.uniform(-1, 1, n * stages))
    out = mem.alloc(n)
    return KernelLaunch(_FFT, (blocks, 1, 1), (threads, 1, 1),
                        dict(data=data, tw=tw, out=out, nbytes=n * 4,
                             stages=stages), mem)


# --------------------------------------------------------------------------
# BP: backprop — 16-wide inner block dimension (CAE's weak spot, §5.4),
# shared-memory tree reduction with barriers.

_BP = kernel(TID_XY + """
    mul r2, %ntid.x, %nctaid.x;
    mul r3, gy, r2;
    add r4, r3, gx;
    mul r5, r4, 4;
    add waddr, param.w, r5;
    ld.global wv, [waddr];
    mul r6, gx, 4;
    add iaddr, param.inp, r6;
    ld.global iv, [iaddr];
    mul prod, wv, iv;
    mul r7, %tid.y, %ntid.x;
    add r8, r7, %tid.x;
    mul r9, r8, 4;
    st.shared [r9], prod;
    bar.sync;
    mov k, 8;
RED:
    setp.lt p1, %tid.x, k;
    add r10, %tid.x, k;
    add r12, r7, r10;
    mul r13, r12, 4;
    @p1 ld.shared t0, [r13];
    @p1 ld.shared t1, [r9];
    @p1 add t2, t0, t1;
    @p1 st.shared [r9], t2;
    bar.sync;
    shr k, k, 1;
    setp.ge p0, k, 1;
    @p0 bra RED;
    setp.eq p2, %tid.x, 0;
    mul r14, gy, 4;
    add oaddr, param.out, r14;
    @p2 st.global [oaddr], t2;
""", "bp", ("w", "inp", "out"))


def _build_bp(scale: str) -> KernelLaunch:
    gx, gy = pick(scale, (1, 2), (2, 12))
    rng = rng_for("BP")
    mem = GlobalMemory()
    width, height = gx * 16, gy * 16
    w = mem.alloc_array(rng.integers(0, 9, width * height))
    inp = mem.alloc_array(rng.integers(0, 9, width))
    out = mem.alloc(height)
    return KernelLaunch(_BP, (gx, gy, 1), (16, 16, 1),
                        dict(w=w, inp=inp, out=out), mem,
                        shared_words=256)


# --------------------------------------------------------------------------
# SR1: srad v1 — time-stepped 2-D stencil with a heavy exp/div diffusion
# update per point.

_SR1 = kernel(TID_XY + """
    mul width, %ntid.x, %nctaid.x;
    mul rowb, width, 4;
    mul r3, gy, width;
    add idx, r3, gx;
    mul r4, idx, 4;
    mov res, 0;
    mov t, 0;
LOOP:
    mul r5, t, param.planeb;
    add r6, r4, r5;
    add caddr, param.img, r6;
    ld.global c0, [caddr];
    add naddr, caddr, rowb;
    ld.global cn, [naddr];
    sub saddr, caddr, rowb;
    ld.global cs, [saddr];
    ld.global ce, [caddr+4];
    sub waddr, caddr, 4;
    ld.global cw, [waddr];
    sub dn, cn, c0;
    sub ds, cs, c0;
    sub de, ce, c0;
    sub dw, cw, c0;
    mul g0, dn, dn;
    mad g0, ds, ds, g0;
    mad g0, de, de, g0;
    mad g0, dw, dw, g0;
    mul l0, c0, c0;
    add l0, l0, 1;
    div q0, g0, l0;
    mul q1, q0, 0.25;
    exp e0, q1;
    rcp cdiff, e0;
    add sum, dn, ds;
    add sum, sum, de;
    add sum, sum, dw;
    mul upd, cdiff, sum;
    mad r7, upd, 0.25, c0;
    add res, res, r7;
    add t, t, 1;
    setp.lt p0, t, param.steps;
    @p0 bra LOOP;
    add oaddr, param.out, r4;
    st.global [oaddr], res;
""", "sr1", ("img", "out", "planeb", "steps"))


def _stencil_launch(kern, abbr: str, scale: str, steps_pick=(2, 4),
                    extra_params=None) -> KernelLaunch:
    gx, gy = pick(scale, (2, 2), (4, 2))
    bx, by = 32, pick(scale, 4, 8)
    steps = pick(scale, *steps_pick)
    rng = rng_for(abbr)
    mem = GlobalMemory(1 << 23)
    width, height = gx * bx, gy * by
    plane = width * height
    total = (steps + 1) * plane + 2 * width + 8
    base = mem.alloc(total)
    mem.words[base // 4: base // 4 + total] = rng.uniform(0, 4, total)
    img = base + width * 4                  # halo row above and below
    out = mem.alloc(plane + 4)
    params = dict(img=img, out=out, planeb=plane * 4, steps=steps)
    if extra_params:
        params.update(extra_params(width, height))
    return KernelLaunch(kern, (gx, gy, 1), (bx, by, 1), params, mem)


def _build_sr1(scale: str) -> KernelLaunch:
    return _stencil_launch(_SR1, "SR1", scale)


# --------------------------------------------------------------------------
# HS: hotspot — time-stepped stencil with affine min/max index clamping
# (§4.6 clamp ops).

_HS = kernel(TID_XY + """
    mul width, %ntid.x, %nctaid.x;
    mul rowb, width, 4;
    min cx, gx, param.wmax;
    max cx, cx, 0;
    mul r3, gy, width;
    add idx, r3, cx;
    mul r4, idx, 4;
    mov res, 0;
    mov t, 0;
LOOP:
    mul r5, t, param.planeb;
    add r6, r4, r5;
    add caddr, param.img, r6;
    ld.global c0, [caddr];
    add naddr, caddr, rowb;
    ld.global cn, [naddr];
    sub saddr, caddr, rowb;
    ld.global cs, [saddr];
    ld.global ce, [caddr+4];
    sub waddr, caddr, 4;
    ld.global cw, [waddr];
    add sum, cn, cs;
    add sum, sum, ce;
    add sum, sum, cw;
    mul r7, c0, 4;
    sub delta, sum, r7;
    mul d2, delta, 0.2;
    mul amb, c0, 0.05;
    sub d3, d2, amb;
    add r8, c0, d3;
    add res, res, r8;
    add t, t, 1;
    setp.lt p0, t, param.steps;
    @p0 bra LOOP;
    mul r9, gy, width;
    add r10, r9, gx;
    mul r11, r10, 4;
    add oaddr, param.out, r11;
    st.global [oaddr], res;
""", "hs", ("img", "out", "planeb", "steps", "wmax"))


def _build_hs(scale: str) -> KernelLaunch:
    return _stencil_launch(
        _HS, "HS", scale,
        extra_params=lambda w, h: dict(wmax=w - 1))


# --------------------------------------------------------------------------
# PF: pathfinder — row-sweep dynamic programming, shared memory + barriers,
# affine min/max clamps for neighbor indices.

_PF = kernel(TID_X + """
    mul r1, tid, 4;
    add srcaddr, param.wall, r1;
    ld.global cur, [srcaddr];
    mul myoff, %tid.x, 4;
    mov lim, %ntid.x;
    sub lim, lim, 1;
    mov t, 0;
LOOP:
    st.shared [myoff], cur;
    bar.sync;
    sub r3, %tid.x, 1;
    max r4, r3, 0;
    mul r5, r4, 4;
    ld.shared lv, [r5];
    add r6, %tid.x, 1;
    min r8, r6, lim;
    mul r9, r8, 4;
    ld.shared rv, [r9];
    min m0, lv, rv;
    min m1, m0, cur;
    add t, t, 1;
    mul r10, t, param.rowbytes;
    add waddr2, srcaddr, r10;
    ld.global w0, [waddr2];
    add cur, w0, m1;
    bar.sync;
    setp.lt p0, t, param.steps;
    @p0 bra LOOP;
    add oaddr, param.out, r1;
    st.global [oaddr], cur;
""", "pf", ("wall", "out", "rowbytes", "steps"))


def _build_pf(scale: str) -> KernelLaunch:
    blocks, threads, steps = pick(scale, (2, 64, 3), (8, 256, 14))
    rng = rng_for("PF")
    mem = GlobalMemory()
    width = blocks * threads
    wall = mem.alloc_array(rng.integers(0, 10, width * (steps + 1)))
    out = mem.alloc(width)
    return KernelLaunch(_PF, (blocks, 1, 1), (threads, 1, 1),
                        dict(wall=wall, out=out, rowbytes=width * 4,
                             steps=steps), mem, shared_words=threads)


# --------------------------------------------------------------------------
# BS: blackscholes — SFU-heavy pricing loop over a strip of options per
# thread.

_BS = kernel(TID_X + """
    mov csum, 0;
    mov psum, 0;
    mov j, 0;
LOOP:
    mul r0b, j, param.nbytes;
    mul r1, tid, 4;
    add r2, r0b, r1;
    add saddr, param.S, r2;
    ld.global sv, [saddr];
    add xaddr, param.X, r2;
    ld.global xv, [xaddr];
    add taddr, param.T, r2;
    ld.global tv, [taddr];
    sqrt sq, tv;
    div ra, sv, xv;
    log l0, ra;
    mul r3, tv, 0.06;
    add l1, l0, r3;
    mul vol, sq, 0.3;
    add vol, vol, 0.0001;
    div d1, l1, vol;
    sub d2, d1, vol;
    mul n1a, d1, d1;
    mul n1b, n1a, -0.5;
    exp n1, n1b;
    mul n2a, d2, d2;
    mul n2b, n2a, -0.5;
    exp n2, n2b;
    mul disc, tv, -0.06;
    exp df, disc;
    mul xd, xv, df;
    mul c0, sv, n1;
    mul c1, xd, n2;
    sub call, c0, c1;
    sub put, c1, c0;
    abs put, put;
    add csum, csum, call;
    add psum, psum, put;
    add j, j, 1;
    setp.lt p0, j, param.nopt;
    @p0 bra LOOP;
    mul r4, tid, 4;
    add caddr2, param.call, r4;
    st.global [caddr2], csum;
    add paddr2, param.put, r4;
    st.global [paddr2], psum;
""", "bs", ("S", "X", "T", "call", "put", "nbytes", "nopt"))


def _build_bs(scale: str) -> KernelLaunch:
    blocks, threads, nopt = pick(scale, (2, 64, 2), (8, 256, 8))
    rng = rng_for("BS")
    mem = GlobalMemory()
    n = blocks * threads
    s = mem.alloc_array(rng.uniform(10, 100, n * nopt))
    x = mem.alloc_array(rng.uniform(10, 100, n * nopt))
    t = mem.alloc_array(rng.uniform(0.2, 2, n * nopt))
    call = mem.alloc(n)
    put = mem.alloc(n)
    return KernelLaunch(_BS, (blocks, 1, 1), (threads, 1, 1),
                        dict(S=s, X=x, T=t, call=call, put=put,
                             nbytes=n * 4, nopt=nopt), mem)


COMPUTE_BENCHMARKS = [
    Benchmark("CP", "coulombic potential", "G", "compute", _build_cp,
              "scalar atom loop, heavy FP per iteration"),
    Benchmark("STO", "StoreGPU hashing", "G", "compute", _build_sto,
              "integer mixing rounds on loaded words"),
    Benchmark("AES", "AES rounds", "G", "compute", _build_aes,
              "data-dependent table lookups + affine round keys"),
    Benchmark("MQ", "mri-q", "G", "compute", _build_mq,
              "trig accumulation over shared samples"),
    Benchmark("TP", "tpacf", "G", "compute", _build_tp,
              "dot products with data-dependent binning"),
    Benchmark("FFT", "FFT butterflies", "G", "compute", _build_fft,
              "XOR partner addressing plus affine twiddles"),
    Benchmark("BP", "backprop", "C", "compute", _build_bp,
              "16-wide block rows, shared reduction"),
    Benchmark("SR1", "srad v1", "C", "compute", _build_sr1,
              "stencil with exp/div diffusion update"),
    Benchmark("HS", "hotspot", "C", "compute", _build_hs,
              "stencil with affine min/max clamps"),
    Benchmark("PF", "pathfinder", "C", "compute", _build_pf,
              "row-sweep DP, shared memory + barriers"),
    Benchmark("BS", "blackscholes", "P", "compute", _build_bs,
              "SFU-heavy option pricing loop"),
]
