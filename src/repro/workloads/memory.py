"""The 18 memory-intensive benchmarks (paper Table 2).

Grids are sized so the baseline sits in the latency-bound regime the
paper's memory-intensive suite occupies: a couple of resident CTAs per SM
(8 warps), streaming footprints that miss in the L1, and loop bodies that
stall on loaded values — leaving memory-level-parallelism headroom that the
AEU's early requests (and, speculatively, MTA's prefetches) can fill.
"""

from __future__ import annotations

import numpy as np

from ..sim.launch import GlobalMemory, KernelLaunch
from .base import Benchmark, TID_X, TID_XY, kernel, pick, rng_for

# --------------------------------------------------------------------------
# LIB: LIBOR Monte Carlo — streaming strided loads with light compute.

_LIB = kernel(TID_X + """
    mov acc, 1;
    mov j, 0;
LOOP:
    mul r2, j, 4;
    add zaddr, param.z, r2;
    ld.global zv, [zaddr];
    mul r3, j, param.nbytes;
    mul r4, tid, 4;
    add r5, r3, r4;
    add raddr, param.rates, r5;
    ld.global rv, [raddr];
    mul t0, acc, zv;
    mad acc, rv, 0.01, t0;
    add j, j, 1;
    setp.lt p0, j, param.steps;
    @p0 bra LOOP;
    mul r6, tid, 4;
    add oaddr, param.out, r6;
    st.global [oaddr], acc;
""", "lib", ("z", "rates", "out", "nbytes", "steps"))


def _build_lib(scale: str) -> KernelLaunch:
    blocks, threads, steps = pick(scale, (2, 64, 4), (8, 128, 32))
    rng = rng_for("LIB")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    z = mem.alloc_array(rng.uniform(0.9, 1.1, steps))
    rates = mem.alloc_array(rng.uniform(0, 1, steps * n))
    out = mem.alloc(n)
    return KernelLaunch(_LIB, (blocks, 1, 1), (threads, 1, 1),
                        dict(z=z, rates=rates, out=out, nbytes=n * 4,
                             steps=steps), mem)


# --------------------------------------------------------------------------
# SG: sgemm — blocked inner-product loop, two streaming loads per FMA.

_SG = kernel(TID_X + """
    mov acc, 0;
    mov k, 0;
LOOP:
    mul r2, tid, param.kbytes;
    mul r3, k, 4;
    add r4, r2, r3;
    add aaddr, param.A, r4;
    ld.global av, [aaddr];
    mul r5, k, param.nbytes;
    mul r6, %ctaid.y, 4;
    add r7, r5, r6;
    add baddr, param.B, r7;
    ld.global bv, [baddr];
    mad acc, av, bv, acc;
    add k, k, 1;
    setp.lt p0, k, param.K;
    @p0 bra LOOP;
    mul r8, tid, param.nbytes;
    mul r9, %ctaid.y, 4;
    add r10, r8, r9;
    add oaddr, param.C, r10;
    st.global [oaddr], acc;
""", "sg", ("A", "B", "C", "K", "kbytes", "nbytes"))


def _build_sg(scale: str) -> KernelLaunch:
    blocks, threads, kk = pick(scale, (2, 64, 6), (4, 128, 40))
    rng = rng_for("SG")
    mem = GlobalMemory(1 << 23)
    m = blocks * threads
    ncols = 2
    a = mem.alloc_array(rng.integers(0, 9, m * kk))
    b = mem.alloc_array(rng.integers(0, 9, kk * ncols))
    c = mem.alloc(m * ncols)
    return KernelLaunch(_SG, (blocks, ncols, 1), (threads, 1, 1),
                        dict(A=a, B=b, C=c, K=kk, kbytes=kk * 4,
                             nbytes=ncols * 4), mem)


# --------------------------------------------------------------------------
# ST: stencil — time-stepped 5-point sweep with plane streaming.

_ST = kernel(TID_XY + """
    mul width, %ntid.x, %nctaid.x;
    mul rowb, width, 4;
    mul r3, gy, width;
    add idx, r3, gx;
    mul r4, idx, 4;
    mov res, 0;
    mov t, 0;
LOOP:
    mul r5, t, param.planeb;
    add r6, r4, r5;
    add caddr, param.img, r6;
    ld.global c0, [caddr];
    add naddr, caddr, rowb;
    ld.global cn, [naddr];
    sub saddr, caddr, rowb;
    ld.global cs, [saddr];
    ld.global ce, [caddr+4];
    sub waddr, caddr, 4;
    ld.global cw, [waddr];
    add uaddr, caddr, param.planeb;
    ld.global cu, [uaddr];
    add s0, cn, cs;
    add s1, ce, cw;
    add s2, s0, s1;
    add s2, s2, cu;
    mad r7, c0, -5, s2;
    add res, res, r7;
    add t, t, 1;
    setp.lt p0, t, param.steps;
    @p0 bra LOOP;
    add oaddr, param.out, r4;
    st.global [oaddr], res;
""", "st", ("img", "out", "planeb", "steps"))


def _build_st(scale: str) -> KernelLaunch:
    gx, gy = pick(scale, (2, 2), (4, 2))
    bx, by = 32, pick(scale, 4, 8)
    steps = pick(scale, 2, 6)
    rng = rng_for("ST")
    mem = GlobalMemory(1 << 23)
    width, height = gx * bx, gy * by
    plane = width * height
    total = (steps + 2) * plane + 2 * width + 8
    base = mem.alloc(total)
    mem.words[base // 4: base // 4 + total] = rng.uniform(0, 4, total)
    img = base + width * 4
    out = mem.alloc(plane + 4)
    return KernelLaunch(_ST, (gx, gy, 1), (bx, by, 1),
                        dict(img=img, out=out, planeb=plane * 4,
                             steps=steps), mem)


# --------------------------------------------------------------------------
# IMG: imghisto — strided pixel streaming + global atomic scatter.

_IMG = kernel(TID_X + """
    mov j, 0;
LOOP:
    mul r1, j, param.strideb;
    mul r2, tid, 4;
    add r3, r1, r2;
    add paddr, param.pix, r3;
    ld.global pv, [paddr];
    and bin, pv, 63;
    mul r4, bin, 4;
    add haddr, param.hist, r4;
    atom.global [haddr], 1;
    add j, j, 1;
    setp.lt p0, j, param.iters;
    @p0 bra LOOP;
""", "img", ("pix", "hist", "strideb", "iters"))


def _build_img(scale: str) -> KernelLaunch:
    blocks, threads, iters = pick(scale, (2, 64, 2), (8, 128, 12))
    rng = rng_for("IMG")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    pix = mem.alloc_array(rng.integers(0, 256, n * iters))
    hist = mem.alloc(64)
    return KernelLaunch(_IMG, (blocks, 1, 1), (threads, 1, 1),
                        dict(pix=pix, hist=hist, strideb=n * 4,
                             iters=iters), mem)


# --------------------------------------------------------------------------
# HI: histogram — shared-memory privatized bins, barrier, global merge.

_HI = kernel(TID_X + """
    mul r0b, %tid.x, 4;
    st.shared [r0b], 0;
    bar.sync;
    mov j, 0;
LOOP:
    mul r2, j, param.strideb;
    mul r3, tid, 4;
    add r4, r2, r3;
    add paddr, param.pix, r4;
    ld.global pv, [paddr];
    and bin, pv, 63;
    mul r5, bin, 4;
    atom.shared [r5], 1;
    add j, j, 1;
    setp.lt p0, j, param.iters;
    @p0 bra LOOP;
    bar.sync;
    setp.lt p1, %tid.x, 64;
    @p1 ld.shared cnt, [r0b];
    mul r6, %tid.x, 4;
    add haddr, param.hist, r6;
    @p1 atom.global [haddr], cnt;
""", "hi", ("pix", "hist", "strideb", "iters"))


def _build_hi(scale: str) -> KernelLaunch:
    blocks, threads, iters = pick(scale, (2, 128, 2), (8, 128, 12))
    rng = rng_for("HI")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    pix = mem.alloc_array(rng.integers(0, 256, n * iters))
    hist = mem.alloc(64)
    return KernelLaunch(_HI, (blocks, 1, 1), (threads, 1, 1),
                        dict(pix=pix, hist=hist, strideb=n * 4,
                             iters=iters), mem, shared_words=threads)


# --------------------------------------------------------------------------
# LBM: lattice-Boltzmann — many streaming loads/stores per cell, several
# cells per thread.

_LBM = kernel(TID_X + """
    mov i, 0;
LOOP:
    mul r0b, i, param.nbytes;
    mul r1, tid, 4;
    add r2, r0b, r1;
    add a0, param.fin, r2;
    ld.global v0, [a0];
    add a1, a0, param.slot;
    ld.global v1, [a1];
    add a2, a1, param.slot;
    ld.global v2, [a2];
    add a3, a2, param.slot;
    ld.global v3, [a3];
    add a4, a3, param.slot;
    ld.global v4, [a4];
    add a5, a4, param.slot;
    ld.global v5, [a5];
    add s0, v0, v1;
    add s1, v2, v3;
    add s2, v4, v5;
    add rho, s0, s1;
    add rho, rho, s2;
    mul m0, rho, 0.166;
    sub m1, v1, m0;
    sub m2, v2, m0;
    add o0, param.fout, r2;
    st.global [o0], m0;
    add o1, o0, param.slot;
    st.global [o1], m1;
    add o2, o1, param.slot;
    st.global [o2], m2;
    add i, i, 1;
    setp.lt p0, i, param.cells;
    @p0 bra LOOP;
""", "lbm", ("fin", "fout", "slot", "nbytes", "cells"))


def _build_lbm(scale: str) -> KernelLaunch:
    blocks, threads, cells = pick(scale, (2, 64, 1), (8, 128, 4))
    rng = rng_for("LBM")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads * cells
    fin = mem.alloc_array(rng.uniform(0, 1, n * 6))
    fout = mem.alloc(n * 3)
    return KernelLaunch(_LBM, (blocks, 1, 1), (threads, 1, 1),
                        dict(fin=fin, fout=fout, slot=n * 4,
                             nbytes=blocks * threads * 4, cells=cells), mem)


# --------------------------------------------------------------------------
# SPV: spmv (CSR) — affine row-pointer loads, then a data-dependent inner
# loop with indirect x[col] gathers.

_SPV = kernel(TID_X + """
    mul r1, tid, 4;
    add rpaddr, param.rp, r1;
    ld.global start, [rpaddr];
    ld.global end, [rpaddr+4];
    mov acc, 0;
    mov j, start;
INNER:
    setp.ge p1, j, end;
    @p1 bra DONE;
    mul r2, j, 4;
    add ciaddr, param.ci, r2;
    ld.global col, [ciaddr];
    add vaddr, param.val, r2;
    ld.global vv, [vaddr];
    mul r3, col, 4;
    add xaddr, param.x, r3;
    ld.global xv, [xaddr];
    mad acc, vv, xv, acc;
    add j, j, 1;
    bra INNER;
DONE:
    add yaddr, param.y, r1;
    st.global [yaddr], acc;
""", "spv", ("rp", "ci", "val", "x", "y"))


def _build_spv(scale: str) -> KernelLaunch:
    blocks, threads, nnz_row = pick(scale, (2, 64, 3), (8, 128, 10))
    rng = rng_for("SPV")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    rp = mem.alloc_array(np.arange(n + 1) * nnz_row)
    ci = mem.alloc_array(rng.integers(0, n, n * nnz_row))
    val = mem.alloc_array(rng.integers(0, 9, n * nnz_row))
    x = mem.alloc_array(rng.integers(0, 9, n))
    y = mem.alloc(n)
    return KernelLaunch(_SPV, (blocks, 1, 1), (threads, 1, 1),
                        dict(rp=rp, ci=ci, val=val, x=x, y=y), mem)


# --------------------------------------------------------------------------
# BT: b+tree — pointer chasing, serially dependent loads.

_BT = kernel(TID_X + """
    mul r1, tid, 4;
    add kaddr, param.keys, r1;
    ld.global key, [kaddr];
    mov node, 0;
    mov d, 0;
LOOP:
    shr kb, key, d;
    and way, kb, 3;
    mul r2, node, 16;
    mul r3, way, 4;
    add r4, r2, r3;
    add taddr, param.tree, r4;
    ld.global node, [taddr];
    add d, d, 1;
    setp.lt p0, d, param.depth;
    @p0 bra LOOP;
    add oaddr, param.out, r1;
    st.global [oaddr], node;
""", "bt", ("keys", "tree", "out", "depth"))


def _build_bt(scale: str) -> KernelLaunch:
    blocks, threads, depth = pick(scale, (2, 64, 3), (8, 128, 10))
    rng = rng_for("BT")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    nnodes = 4096
    keys = mem.alloc_array(rng.integers(0, 1 << 20, n))
    tree = mem.alloc_array(rng.integers(0, nnodes, nnodes * 4))
    out = mem.alloc(n)
    return KernelLaunch(_BT, (blocks, 1, 1), (threads, 1, 1),
                        dict(keys=keys, tree=tree, out=out, depth=depth),
                        mem)


# --------------------------------------------------------------------------
# LUD: LU decomposition row elimination — pivot-row (scalar) and own-row
# (affine) streaming loads.

_LUD = kernel(TID_X + """
    mov acc, 0;
    mov k, 0;
LOOP:
    mul r2, k, 4;
    add r3, r2, param.poff;
    add pivaddr, param.pivot, r3;
    ld.global pv, [pivaddr];
    mul r4, tid, param.rowbytes;
    add r5, r4, r2;
    add maddr, param.mat, r5;
    ld.global mv, [maddr];
    mul t0, mv, pv;
    sub acc, acc, t0;
    add k, k, 1;
    setp.lt p0, k, param.cols;
    @p0 bra LOOP;
    mul r6, tid, 4;
    add oaddr, param.out, r6;
    st.global [oaddr], acc;
""", "lud", ("pivot", "mat", "out", "poff", "rowbytes", "cols"))


def _build_lud(scale: str) -> KernelLaunch:
    blocks, threads, cols = pick(scale, (2, 64, 4), (8, 128, 24))
    rng = rng_for("LUD")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    pivot = mem.alloc_array(rng.integers(0, 9, cols))
    mat = mem.alloc_array(rng.integers(0, 9, n * cols))
    out = mem.alloc(n)
    return KernelLaunch(_LUD, (blocks, 1, 1), (threads, 1, 1),
                        dict(pivot=pivot, mat=mat, out=out, poff=0,
                             rowbytes=cols * 4, cols=cols), mem)


# --------------------------------------------------------------------------
# SR2: srad v2 — time-stepped stencil with a light update (memory bound
# where SR1 is compute bound).

_SR2 = kernel(TID_XY + """
    mul width, %ntid.x, %nctaid.x;
    mul rowb, width, 4;
    mul r3, gy, width;
    add idx, r3, gx;
    mul r4, idx, 4;
    mov res, 0;
    mov t, 0;
LOOP:
    mul r5, t, param.planeb;
    add r6, r4, r5;
    add caddr, param.img, r6;
    ld.global c0, [caddr];
    add naddr, caddr, rowb;
    ld.global cn, [naddr];
    sub saddr, caddr, rowb;
    ld.global cs, [saddr];
    ld.global ce, [caddr+4];
    sub waddr, caddr, 4;
    ld.global cw, [waddr];
    add s0, cn, cs;
    add s1, ce, cw;
    add s2, s0, s1;
    mad r7, c0, 0.5, s2;
    add res, res, r7;
    add t, t, 1;
    setp.lt p0, t, param.steps;
    @p0 bra LOOP;
    add oaddr, param.out, r4;
    st.global [oaddr], res;
""", "sr2", ("img", "out", "planeb", "steps"))


def _build_sr2(scale: str) -> KernelLaunch:
    from .compute import _stencil_launch
    return _stencil_launch(_SR2, "SR2", scale, steps_pick=(2, 6))


# --------------------------------------------------------------------------
# SC: streamcluster — distances from streamed points to scalar centers.

_SC = kernel(TID_X + """
    mov best, 1000000;
    mov c, 0;
LOOP:
    mul r1, c, param.nbytes;
    mul r2, tid, 8;
    add r3, r1, r2;
    add paddr, param.pts, r3;
    ld.global px, [paddr];
    ld.global py, [paddr+4];
    mul r4, c, 8;
    add caddr, param.centers, r4;
    ld.global cx, [caddr];
    ld.global cy, [caddr+4];
    sub dx, px, cx;
    sub dy, py, cy;
    mul d2, dx, dx;
    mad d2, dy, dy, d2;
    min best, best, d2;
    add c, c, 1;
    setp.lt p0, c, param.ncenters;
    @p0 bra LOOP;
    mul r5, tid, 4;
    add oaddr, param.out, r5;
    st.global [oaddr], best;
""", "sc", ("pts", "centers", "out", "nbytes", "ncenters"))


def _build_sc(scale: str) -> KernelLaunch:
    blocks, threads, ncenters = pick(scale, (2, 64, 3), (8, 128, 16))
    rng = rng_for("SC")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    pts = mem.alloc_array(rng.integers(0, 100, n * 2 * ncenters))
    centers = mem.alloc_array(rng.integers(0, 100, ncenters * 2))
    out = mem.alloc(n)
    return KernelLaunch(_SC, (blocks, 1, 1), (threads, 1, 1),
                        dict(pts=pts, centers=centers, out=out,
                             nbytes=n * 8, ncenters=ncenters), mem)


# --------------------------------------------------------------------------
# KM: kmeans — feature-strided loads + data-dependent argmin (selp).

_KM = kernel(TID_X + """
    mul r1, tid, 4;
    mov best, 1000000;
    mov bestc, 0;
    mov c, 0;
CLOOP:
    mov acc, 0;
    mov f, 0;
FLOOP:
    mul r2, f, param.nbytes;
    add r3, r2, r1;
    add faddr, param.feat, r3;
    ld.global fv, [faddr];
    mul r4, c, param.fbytes;
    mul r5, f, 4;
    add r6, r4, r5;
    add caddr, param.cent, r6;
    ld.global cv, [caddr];
    sub d0, fv, cv;
    mad acc, d0, d0, acc;
    add f, f, 1;
    setp.lt p1, f, param.nfeat;
    @p1 bra FLOOP;
    setp.lt p2, acc, best;
    selp best, acc, best, p2;
    selp bestc, c, bestc, p2;
    add c, c, 1;
    setp.lt p0, c, param.nclusters;
    @p0 bra CLOOP;
    add oaddr, param.assign, r1;
    st.global [oaddr], bestc;
""", "km", ("feat", "cent", "assign", "nbytes", "fbytes", "nfeat",
            "nclusters"))


def _build_km(scale: str) -> KernelLaunch:
    blocks, threads, nfeat, ncl = pick(scale, (2, 64, 2, 2),
                                       (8, 128, 6, 5))
    rng = rng_for("KM")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    feat = mem.alloc_array(rng.integers(0, 50, n * nfeat))
    cent = mem.alloc_array(rng.integers(0, 50, ncl * nfeat))
    assign = mem.alloc(n)
    return KernelLaunch(_KM, (blocks, 1, 1), (threads, 1, 1),
                        dict(feat=feat, cent=cent, assign=assign,
                             nbytes=n * 4, fbytes=nfeat * 4, nfeat=nfeat,
                             nclusters=ncl), mem)


# --------------------------------------------------------------------------
# BFS: frontier expansion — data-dependent control flow around indirect
# neighbor updates (DAC sees little benefit here, §5.5).

_BFS = kernel(TID_X + """
    mul r1, tid, 4;
    add laddr, param.levels, r1;
    ld.global lv, [laddr];
    setp.eq p1, lv, param.cur;
    @!p1 bra DONE;
    mul r2, tid, param.degbytes;
    add eaddr, param.edges, r2;
    add nxt, param.cur, 1;
    mov j, 0;
ELOOP:
    mul r3, j, 4;
    add e2, eaddr, r3;
    ld.global nid, [e2];
    mul r4, nid, 4;
    add nladdr, param.levels, r4;
    ld.global nl, [nladdr];
    setp.gt p2, nl, nxt;
    @p2 st.global [nladdr], nxt;
    add j, j, 1;
    setp.lt p0, j, param.degree;
    @p0 bra ELOOP;
DONE:
    exit;
""", "bfs", ("levels", "edges", "cur", "degree", "degbytes"))


def _build_bfs(scale: str) -> KernelLaunch:
    blocks, threads, degree = pick(scale, (2, 64, 2), (8, 128, 8))
    rng = rng_for("BFS")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    levels = rng.integers(0, 4, n).astype(np.float64)
    levels[levels > 1] = 99
    laddr = mem.alloc_array(levels)
    edges = mem.alloc_array(rng.integers(0, n, n * degree))
    return KernelLaunch(_BFS, (blocks, 1, 1), (threads, 1, 1),
                        dict(levels=laddr, edges=edges, cur=1,
                             degree=degree, degbytes=degree * 4), mem)


# --------------------------------------------------------------------------
# CFD: unstructured flux — affine self loads + indirect neighbor gathers,
# several sweeps.

_CFD = kernel(TID_X + """
    mov flux, 0;
    mov s, 0;
SWEEP:
    mul r0b, s, param.nbytes;
    mul r1, tid, 4;
    add r2, r0b, r1;
    add vaddr, param.vars, r2;
    ld.global v0, [vaddr];
    mul r3, tid, 16;
    add niaddr, param.nbr, r3;
    mov e, 0;
NLOOP:
    mul r4, e, 4;
    add n2, niaddr, r4;
    ld.global nid, [n2];
    mul r5, nid, 4;
    add r6, r0b, r5;
    add nvaddr, param.vars, r6;
    ld.global nv, [nvaddr];
    sub d0, nv, v0;
    mul d1, d0, 0.25;
    add flux, flux, d1;
    add e, e, 1;
    setp.lt p1, e, 4;
    @p1 bra NLOOP;
    add s, s, 1;
    setp.lt p0, s, param.sweeps;
    @p0 bra SWEEP;
    mul r7, tid, 4;
    add oaddr, param.fluxes, r7;
    st.global [oaddr], flux;
""", "cfd", ("vars", "nbr", "fluxes", "nbytes", "sweeps"))


def _build_cfd(scale: str) -> KernelLaunch:
    blocks, threads, sweeps = pick(scale, (2, 64, 1), (8, 128, 3))
    rng = rng_for("CFD")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    vars_ = mem.alloc_array(rng.uniform(0, 10, n * sweeps))
    nbr = mem.alloc_array(rng.integers(0, n, n * 4))
    fluxes = mem.alloc(n)
    return KernelLaunch(_CFD, (blocks, 1, 1), (threads, 1, 1),
                        dict(vars=vars_, nbr=nbr, fluxes=fluxes,
                             nbytes=n * 4, sweeps=sweeps), mem)


# --------------------------------------------------------------------------
# MC: Monte Carlo — streaming random-number loads + Box-Muller compute.

_MC = kernel(TID_X + """
    mov acc, 0;
    mov j, 0;
LOOP:
    mul r2, j, param.nbytes;
    mul r3, tid, 4;
    add r4, r2, r3;
    add u1addr, param.u1, r4;
    ld.global u1, [u1addr];
    add u2addr, param.u2, r4;
    ld.global u2, [u2addr];
    log l0, u1;
    mul l1, l0, -2;
    sqrt rr, l1;
    mul ang, u2, 6.2831853;
    cos cc, ang;
    mad acc, rr, cc, acc;
    add j, j, 1;
    setp.lt p0, j, param.paths;
    @p0 bra LOOP;
    add oaddr, param.out, r3;
    st.global [oaddr], acc;
""", "mc", ("u1", "u2", "out", "nbytes", "paths"))


def _build_mc(scale: str) -> KernelLaunch:
    blocks, threads, paths = pick(scale, (2, 64, 3), (8, 128, 24))
    rng = rng_for("MC")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    u1 = mem.alloc_array(rng.uniform(0.01, 1, n * paths))
    u2 = mem.alloc_array(rng.uniform(0, 1, n * paths))
    out = mem.alloc(n)
    return KernelLaunch(_MC, (blocks, 1, 1), (threads, 1, 1),
                        dict(u1=u1, u2=u2, out=out, nbytes=n * 4,
                             paths=paths), mem)


# --------------------------------------------------------------------------
# MT: Mersenne-twister-style state updates — modulo index mapping
# (exercises DAC's mod-type tuples, §4.4).

_MT = kernel(TID_X + """
    mul r3, tid, 4;
    mov i, 0;
LOOP:
    mul r2, i, param.strideb;
    add r4, r3, r2;
    rem r5, r4, param.modbytes;
    add maddr, param.state, r5;
    ld.global sv, [maddr];
    shr r6, sv, 1;
    xor r7, sv, r6;
    and r7, r7, 1048575;
    mul r8, i, param.outrow;
    add r9, r8, r3;
    add oaddr, param.out, r9;
    st.global [oaddr], r7;
    add i, i, 1;
    setp.lt p0, i, param.iters;
    @p0 bra LOOP;
""", "mt", ("state", "out", "strideb", "modbytes", "outrow", "iters"))


def _build_mt(scale: str) -> KernelLaunch:
    blocks, threads, iters = pick(scale, (2, 64, 3), (8, 128, 20))
    rng = rng_for("MT")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    state_words = 16384
    state = mem.alloc_array(rng.integers(0, 1 << 20, state_words))
    out = mem.alloc(n * iters)
    return KernelLaunch(_MT, (blocks, 1, 1), (threads, 1, 1),
                        dict(state=state, out=out, strideb=1604,
                             modbytes=state_words * 4, outrow=n * 4,
                             iters=iters), mem)


# --------------------------------------------------------------------------
# SP: scalar product — streaming dot product with a shared-memory tree
# reduction per block.

_SP = kernel(TID_X + """
    mov acc, 0;
    mov j, 0;
LOOP:
    mul r2, j, param.nbytes;
    mul r3, tid, 4;
    add r4, r2, r3;
    add aaddr, param.A, r4;
    ld.global av, [aaddr];
    add baddr, param.B, r4;
    ld.global bv, [baddr];
    mad acc, av, bv, acc;
    add j, j, 1;
    setp.lt p0, j, param.chunks;
    @p0 bra LOOP;
    mul r5, %tid.x, 4;
    st.shared [r5], acc;
    bar.sync;
    mov k, param.half;
RED:
    setp.lt p1, %tid.x, k;
    add r6, %tid.x, k;
    mul r7, r6, 4;
    @p1 ld.shared t0, [r7];
    @p1 ld.shared t1, [r5];
    @p1 add t2, t0, t1;
    @p1 st.shared [r5], t2;
    bar.sync;
    shr k, k, 1;
    setp.ge p0, k, 1;
    @p0 bra RED;
    setp.eq p2, %tid.x, 0;
    mul r8, %ctaid.x, 4;
    add oaddr, param.out, r8;
    @p2 st.global [oaddr], t2;
""", "sp", ("A", "B", "out", "nbytes", "chunks", "half"))


def _build_sp(scale: str) -> KernelLaunch:
    blocks, threads, chunks = pick(scale, (2, 64, 2), (8, 128, 20))
    rng = rng_for("SP")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    a = mem.alloc_array(rng.integers(0, 9, n * chunks))
    b = mem.alloc_array(rng.integers(0, 9, n * chunks))
    out = mem.alloc(blocks)
    return KernelLaunch(_SP, (blocks, 1, 1), (threads, 1, 1),
                        dict(A=a, B=b, out=out, nbytes=n * 4,
                             chunks=chunks, half=threads // 2), mem,
                        shared_words=threads)


# --------------------------------------------------------------------------
# CS: convolution separable — sliding-window loads with a boundary-clamped
# start offset (exercises §4.6 divergent affine tuples), several rows.

_CS = kernel(TID_X + """
    setp.lt p1, tid, param.border;
    mul off, tid, 4;
    @p1 mov off, 0;
    mov acc, 0;
    mov row, 0;
RLOOP:
    mul rbase, row, param.rowbytes;
    add ibase, param.inp, rbase;
    add iaddr, ibase, off;
    mov k, 0;
KLOOP:
    mul r2, k, 4;
    add caddr, param.coef, r2;
    ld.global cv, [caddr];
    add a2, iaddr, r2;
    ld.global iv, [a2];
    mad acc, cv, iv, acc;
    add k, k, 1;
    setp.lt p0, k, param.taps;
    @p0 bra KLOOP;
    add row, row, 1;
    setp.lt p2, row, param.rows;
    @p2 bra RLOOP;
    mul r4, tid, 4;
    add oaddr, param.out, r4;
    st.global [oaddr], acc;
""", "cs", ("inp", "coef", "out", "rowbytes", "border", "taps", "rows"))


def _build_cs(scale: str) -> KernelLaunch:
    blocks, threads, taps, rows = pick(scale, (2, 64, 3, 1), (8, 128, 7, 4))
    rng = rng_for("CS")
    mem = GlobalMemory(1 << 23)
    n = blocks * threads
    row_words = n + taps + 2
    inp = mem.alloc_array(rng.integers(0, 9, row_words * rows))
    coef = mem.alloc_array(rng.integers(1, 5, taps))
    out = mem.alloc(n)
    return KernelLaunch(_CS, (blocks, 1, 1), (threads, 1, 1),
                        dict(inp=inp, coef=coef, out=out,
                             rowbytes=row_words * 4, border=16, taps=taps,
                             rows=rows), mem)


MEMORY_BENCHMARKS = [
    Benchmark("LIB", "LIBOR Monte Carlo", "G", "memory", _build_lib,
              "streaming strided loads, light compute"),
    Benchmark("SG", "sgemm", "R", "memory", _build_sg,
              "blocked inner-product loop"),
    Benchmark("ST", "stencil", "R", "memory", _build_st,
              "time-stepped 5-point streaming sweep"),
    Benchmark("IMG", "imghisto", "G", "memory", _build_img,
              "pixel streaming + global atomic scatter"),
    Benchmark("HI", "histogram", "R", "memory", _build_hi,
              "shared privatized bins, global merge"),
    Benchmark("LBM", "lattice-Boltzmann", "R", "memory", _build_lbm,
              "bandwidth-heavy load/store streaming"),
    Benchmark("SPV", "spmv (CSR)", "R", "memory", _build_spv,
              "affine row pointers, indirect gathers"),
    Benchmark("BT", "b+tree", "C", "memory", _build_bt,
              "pointer chasing, dependent loads"),
    Benchmark("LUD", "LU decomposition", "C", "memory", _build_lud,
              "pivot-row and own-row streaming"),
    Benchmark("SR2", "srad v2", "C", "memory", _build_sr2,
              "time-stepped stencil, light update"),
    Benchmark("SC", "streamcluster", "C", "memory", _build_sc,
              "points versus centers distances"),
    Benchmark("KM", "kmeans", "C", "memory", _build_km,
              "feature-strided loads, selp argmin"),
    Benchmark("BFS", "breadth-first search", "C", "memory", _build_bfs,
              "data-dependent control + indirect"),
    Benchmark("CFD", "unstructured flux", "C", "memory", _build_cfd,
              "indirect neighbor gathers"),
    Benchmark("MC", "Monte Carlo", "P", "memory", _build_mc,
              "random-stream loads + Box-Muller"),
    Benchmark("MT", "Mersenne twister", "P", "memory", _build_mt,
              "modulo index mapping (mod tuples)"),
    Benchmark("SP", "scalar product", "P", "memory", _build_sp,
              "dot product with shared reduction"),
    Benchmark("CS", "convolution separable", "P", "memory", _build_cs,
              "sliding window, divergent boundary tuple"),
]
