"""Simplified GDDR model: banked, row-buffer aware, FR-FCFS scheduled.

Each bank has a request queue served row-hit-first (FR-FCFS, the policy
GPGPU-sim models): among queued requests the controller picks the oldest
one targeting the open row, falling back to the oldest request overall.
This batches same-row traffic from interleaved streams — without it, two
interleaved streams thrash the row buffers and every access pays the
activate penalty.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..config import DRAMConfig
from ..events import EventQueue
from ..faults.plan import NULL_FAULTS
from ..stats import Stats


class DRAM:
    """Bank-parallel DRAM with FR-FCFS per-bank scheduling.

    ``latency`` is the controller/device pipeline outside the bank timing;
    half is charged on the way in, half on the way out.  A read occupies its
    bank for ``t_row_hit`` or ``t_row_miss`` cycles and the shared data bus
    for ``burst_cycles``.  Writes use the same bank/bus path but complete
    silently.
    """

    def __init__(self, config: DRAMConfig, events: EventQueue, stats: Stats,
                 name: str = "dram", faults=NULL_FAULTS):
        self.config = config
        self.events = events
        self.stats = stats
        self.name = name
        self.faults = faults
        n = config.num_banks
        self._queues: list[deque] = [deque() for _ in range(n)]
        self._bank_free = [0] * n
        self._open_row = [-1] * n
        self._pending_kick = [False] * n
        self._bus_free = 0.0
        self._pipe_in = config.latency // 2
        self._pipe_out = config.latency - config.latency // 2
        self._row_div = config.num_banks * max(1, config.row_size // 128)
        # Preformatted per-request stat keys (hot path).
        self._k_reads = name + ".reads"
        self._k_writes = name + ".writes"
        self._k_row_hits = name + ".row_hits"
        self._k_row_misses = name + ".row_misses"

    # ---- geometry --------------------------------------------------------

    def _bank_of(self, line_addr: int) -> int:
        return (line_addr // 128) % self.config.num_banks

    def _row_of(self, line_addr: int) -> int:
        return (line_addr // 128) // self._row_div

    # ---- request entry -----------------------------------------------------

    def read(self, line_addr: int, now: int,
             callback: Callable[[int], None]) -> None:
        self.stats.add(self._k_reads)
        self._enqueue(line_addr, now, callback)

    def write(self, line_addr: int, now: int) -> None:
        self.stats.add(self._k_writes)
        self._enqueue(line_addr, now, None)

    def _enqueue(self, line_addr: int, now: int,
                 callback: Callable[[int], None] | None) -> None:
        bank = self._bank_of(line_addr)
        arrival = now + self._pipe_in
        self.events.schedule(
            arrival,
            lambda t, b=bank, a=line_addr, c=callback: self._arrive(b, a, c,
                                                                    t))

    def _arrive(self, bank: int, line_addr: int, callback, now: int) -> None:
        self._queues[bank].append((now, line_addr, callback))
        self._kick(bank, now)

    # ---- FR-FCFS service ---------------------------------------------------

    def _schedule_kick(self, bank: int, time: int) -> None:
        """Schedule a service attempt, keeping at most one outstanding per
        bank.  Without the guard every arrival during a busy window queues
        its own retry, and deep per-bank queues degenerate into O(N²)
        event churn."""
        if self._pending_kick[bank]:
            return
        self._pending_kick[bank] = True
        self.events.schedule(time, lambda t, b=bank: self._on_kick(b, t))

    def _on_kick(self, bank: int, now: int) -> None:
        self._pending_kick[bank] = False
        self._kick(bank, now)

    def _kick(self, bank: int, now: int) -> None:
        if now < self._bank_free[bank]:
            self._schedule_kick(bank, self._bank_free[bank])
            return
        queue = self._queues[bank]
        if not queue:
            return
        # Row-hit first, oldest first within each class.
        chosen = None
        for i, (arrival, addr, cb) in enumerate(queue):
            if self._row_of(addr) == self._open_row[bank]:
                chosen = i
                break
        if chosen is None:
            chosen = 0
        arrival, addr, cb = queue[chosen]
        del queue[chosen]
        row = self._row_of(addr)
        if row == self._open_row[bank]:
            busy = self.config.t_row_hit
            self.stats.add(self._k_row_hits)
        else:
            busy = self.config.t_row_miss
            self._open_row[bank] = row
            self.stats.add(self._k_row_misses)
        done = now + busy
        self._bank_free[bank] = done
        data_start = max(float(done), self._bus_free)
        self._bus_free = data_start + self.config.burst_cycles
        if cb is not None:
            finish = int(data_start + self.config.burst_cycles
                         + self._pipe_out)
            if self.faults.enabled:
                finish += self.faults.dram_delay()
            self.events.schedule(finish, cb)
        if queue:
            self._schedule_kick(bank, done)


class PerfectMemory:
    """Zero-latency, infinite-bandwidth endpoint used to classify benchmarks
    as memory- or compute-intensive (paper §5.1.2)."""

    def __init__(self, events: EventQueue, latency: int = 1):
        self.events = events
        self.latency = latency

    def read(self, line_addr: int, now: int,
             callback: Callable[[int], None], lock: bool = False) -> None:
        self.events.schedule(now + self.latency, callback)

    def write(self, line_addr: int, now: int) -> None:
        pass

    # L1-interface shims so the DAC/MTA paths also run (trivially) under
    # perfect memory.
    def can_lock(self, line_addr: int) -> bool:
        return True

    def unlock(self, line_addr: int) -> None:
        pass

    def contains(self, line_addr: int) -> bool:
        return True

    def in_flight(self, line_addr: int) -> bool:
        return False
