"""Memory access coalescing: per-thread addresses -> unique cache lines.

GPUs service one memory transaction per distinct cache line touched by a
warp.  The coalescer is the baseline path; under DAC most loads instead take
the AEU path, which produces line addresses directly from the affine tuple
without ever materializing per-thread addresses (paper §4.2, Fig. 10).
"""

from __future__ import annotations

import numpy as np

LINE_SIZE = 128
LINE_SHIFT = 7          # log2(LINE_SIZE)


def coalesce(addresses: np.ndarray, active: np.ndarray) -> list[int]:
    """Unique line addresses for a warp access.

    ``addresses`` are per-thread byte addresses; ``active`` is the
    participation mask.  Returns line-aligned byte addresses in ascending
    order (empty if no thread is active).
    """
    if not active.any():
        return []
    lines = np.unique(addresses[active].astype(np.int64) >> LINE_SHIFT)
    return [int(a) << LINE_SHIFT for a in lines]


def line_of(address: int) -> int:
    """The line-aligned byte address containing ``address``."""
    return (int(address) >> LINE_SHIFT) << LINE_SHIFT


def word_mask(line_address: int, addresses: np.ndarray,
              active: np.ndarray, granularity: int = 4) -> int:
    """The AEU-style word bit mask for one line (paper Fig. 11 ④): bit *i*
    set means word *i* of the 128-byte line is accessed by some thread."""
    in_line = active & ((addresses.astype(np.int64) >> LINE_SHIFT)
                        == (line_address >> LINE_SHIFT))
    words = ((addresses[in_line].astype(np.int64) - line_address)
             // granularity)
    mask = 0
    for w in np.unique(words):
        mask |= 1 << int(w)
    return mask
