"""Memory access coalescing: per-thread addresses -> unique cache lines.

GPUs service one memory transaction per distinct cache line touched by a
warp.  The coalescer is the baseline path; under DAC most loads instead take
the AEU path, which produces line addresses directly from the affine tuple
without ever materializing per-thread addresses (paper §4.2, Fig. 10).
"""

from __future__ import annotations

import numpy as np

LINE_SIZE = 128
LINE_SHIFT = 7          # log2(LINE_SIZE)


def coalesce(addresses: np.ndarray, active: np.ndarray) -> list[int]:
    """Unique line addresses for a warp access.

    ``addresses`` are per-thread byte addresses; ``active`` is the
    participation mask.  Returns line-aligned byte addresses in ascending
    order (empty if no thread is active).
    """
    if not active.any():
        return []
    lines = np.unique(addresses[active].astype(np.int64) >> LINE_SHIFT)
    return [int(a) << LINE_SHIFT for a in lines]


def line_of(address: int) -> int:
    """The line-aligned byte address containing ``address``."""
    return (int(address) >> LINE_SHIFT) << LINE_SHIFT


def word_mask(line_address: int, addresses: np.ndarray,
              active: np.ndarray, granularity: int = 4) -> int:
    """The AEU-style word bit mask for one line (paper Fig. 11 ④): bit *i*
    set means word *i* of the 128-byte line is accessed by some thread."""
    in_line = active & ((addresses.astype(np.int64) >> LINE_SHIFT)
                        == (line_address >> LINE_SHIFT))
    words = ((addresses[in_line].astype(np.int64) - line_address)
             // granularity)
    # OR is idempotent, so no np.unique pass is needed; the reduce
    # identity covers the no-active-lane case (mask 0).
    return int(np.bitwise_or.reduce(np.int64(1) << words, initial=0))


class CoalesceCache:
    """Memoized coalescing for the dominant affine access patterns.

    A warp's coalescing result depends only on the active threads' addresses
    *relative to the first active address's line*: shifting every address by
    a whole number of lines shifts the line list by the same amount and
    leaves the word masks unchanged.  Strided workloads therefore repeat a
    tiny number of relative patterns across thousands of accesses, and the
    ``np.unique`` + per-line mask loop can be computed once per pattern.

    Correctness relies on two exact identities over int64:
    ``(a - b*LINE_SIZE) >> LINE_SHIFT == (a >> LINE_SHIFT) - b`` (arithmetic
    shift; the subtrahend is line-aligned) and the word offsets
    ``a - line_address`` being invariant under the same shift.  The fault
    checkers recompute records through the uncached module functions, so a
    cache defect would trip the expansion-consistency checker.
    """

    __slots__ = ("_patterns",)

    #: Bound on distinct relative patterns kept (irregular workloads could
    #: otherwise grow the table without limit); on overflow the table is
    #: dropped, not the hit rate for regular patterns.
    MAX_PATTERNS = 1 << 14

    def __init__(self) -> None:
        self._patterns: dict[bytes, tuple[tuple[int, ...],
                                          tuple[int, ...]]] = {}

    def _pattern(self, addresses: np.ndarray,
                 active: np.ndarray) -> tuple[tuple, int] | None:
        act = addresses[active].astype(np.int64)
        if act.size == 0:
            return None
        base_line = int(act[0]) >> LINE_SHIFT
        rel = act - (base_line << LINE_SHIFT)
        key = rel.tobytes()
        pattern = self._patterns.get(key)
        if pattern is None:
            rel_lines = rel >> LINE_SHIFT
            lines, inverse = np.unique(rel_lines, return_inverse=True)
            # ``(rel >> 2) & 31`` is ``(rel mod LINE_SIZE) // 4`` — the
            # in-line word index — and stays exact for negative ``rel``
            # (arithmetic shift is floor division; & 31 is mod 32).
            word_bits = np.int64(1) << ((rel >> 2) & 31)
            masks = np.zeros(len(lines), dtype=np.int64)
            np.bitwise_or.at(masks, inverse, word_bits)
            pattern = (tuple(int(line) for line in lines),
                       tuple(int(m) for m in masks))
            if len(self._patterns) >= self.MAX_PATTERNS:
                self._patterns.clear()
            self._patterns[key] = pattern
        return pattern, base_line

    def lines(self, addresses: np.ndarray, active: np.ndarray) -> list[int]:
        """Memoized :func:`coalesce` (identical result)."""
        hit = self._pattern(addresses, active)
        if hit is None:
            return []
        pattern, base = hit
        return [(base + line) << LINE_SHIFT for line in pattern[0]]

    def lines_and_masks(self, addresses: np.ndarray,
                        active: np.ndarray) -> tuple[list[int], list[int]]:
        """Memoized (:func:`coalesce`, per-line :func:`word_mask`) pair at
        the AEU's 4-byte granularity (identical results)."""
        hit = self._pattern(addresses, active)
        if hit is None:
            return [], []
        pattern, base = hit
        return ([(base + line) << LINE_SHIFT for line in pattern[0]],
                list(pattern[1]))
