"""Set-associative cache with MSHRs and DAC line-lock counters.

The lock counters implement paper §4.2: the AEU locks a line when it issues
an early request so the line cannot be evicted before its demand access; the
non-affine warp unlocks it on access.  The AEU refuses to lock more than
``ways - 1`` ways of a set, which rules out deadlock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..config import CacheConfig
from ..events import EventQueue
from ..faults.plan import NULL_FAULTS
from ..stats import Stats
from ..trace.tracer import NULL_TRACER


class _Line:
    __slots__ = ("tag", "valid", "lock_count", "last_use")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.lock_count = 0
        self.last_use = 0


@dataclass
class _MSHREntry:
    callbacks: list[Callable[[int], None]] = field(default_factory=list)
    lock_count: int = 0


class SetAssocCache:
    """One cache level.  ``next_level`` must expose ``read(line_addr, now,
    callback)`` and ``write(line_addr, now)``."""

    def __init__(self, name: str, config: CacheConfig, next_level,
                 events: EventQueue, stats: Stats, tracer=NULL_TRACER,
                 trace_label: str | None = None, faults=NULL_FAULTS):
        self.name = name
        self.config = config
        self.next_level = next_level
        self.events = events
        self.stats = stats
        self.tracer = tracer
        self.faults = faults
        self.trace_label = trace_label if trace_label is not None else name
        self.num_sets = max(1, config.size_bytes
                            // (config.line_size * config.ways))
        self._sets = [[_Line() for _ in range(config.ways)]
                      for _ in range(self.num_sets)]
        self._mshrs: dict[int, _MSHREntry] = {}
        self._mshr_wait: deque[tuple[int, Callable, bool]] = deque()
        self._pending_locked_fills: dict[int, int] = {}   # set idx -> count
        self._next_free = 0.0
        self._use_clock = 0
        # Stat keys, preformatted once: these counters are bumped on every
        # access and the f-string formatting shows up in profiles.
        self._k_accesses = name + ".accesses"
        self._k_hits = name + ".hits"
        self._k_misses = name + ".misses"
        self._k_mshr_merged = name + ".mshr_merged"
        self._k_mshr_stalls = name + ".mshr_stalls"
        self._k_locked_bypass = name + ".locked_bypass"
        self._k_evictions = name + ".evictions"
        self._k_writes = name + ".writes"

    # ---- geometry ------------------------------------------------------

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_size) % self.num_sets

    def _lookup(self, line_addr: int) -> _Line | None:
        tag = line_addr // self.config.line_size
        for line in self._sets[tag % self.num_sets]:
            if line.valid and line.tag == tag:
                return line
        return None

    def contains(self, line_addr: int) -> bool:
        return self._lookup(line_addr) is not None

    def in_flight(self, line_addr: int) -> bool:
        return line_addr in self._mshrs

    # ---- throughput limiting --------------------------------------------

    def _admit(self, now: int) -> int:
        start = max(float(now), self._next_free)
        self._next_free = start + self.config.accept_interval
        return int(start)

    # ---- reads -----------------------------------------------------------

    def read(self, line_addr: int, now: int,
             callback: Callable[[int], None], lock: bool = False) -> None:
        """Request a line; ``callback(time)`` fires when the data is present
        in this cache level.  ``lock=True`` is the AEU early-request path."""
        start = self._admit(now)
        self.stats.add(self._k_accesses)
        line = self._lookup(line_addr)
        if line is not None:
            self.stats.add(self._k_hits)
            self._use_clock += 1
            line.last_use = self._use_clock
            if lock:
                line.lock_count += 1
            self.events.schedule(start + self.config.hit_latency, callback)
            if self.tracer.enabled:
                self.tracer.mem_access(start, self.trace_label, line_addr,
                                       True)
            return
        self.stats.add(self._k_misses)
        if self.tracer.enabled:
            self.tracer.mem_access(start, self.trace_label, line_addr, False)
        self._miss(line_addr, start, callback, lock)

    def _miss(self, line_addr: int, now: int,
              callback: Callable[[int], None], lock: bool) -> None:
        entry = self._mshrs.get(line_addr)
        if entry is not None:                       # secondary miss: merge
            self.stats.add(self._k_mshr_merged)
            entry.callbacks.append(callback)
            if lock:
                if entry.lock_count == 0:
                    set_idx = self._set_index(line_addr)
                    self._pending_locked_fills[set_idx] = \
                        self._pending_locked_fills.get(set_idx, 0) + 1
                entry.lock_count += 1
            return
        if len(self._mshrs) >= self.config.num_mshrs:
            self.stats.add(self._k_mshr_stalls)
            self._mshr_wait.append((line_addr, callback, lock))
            return
        self._allocate_mshr(line_addr, now, callback, lock)

    def _allocate_mshr(self, line_addr: int, now: int,
                       callback: Callable[[int], None], lock: bool) -> None:
        entry = _MSHREntry([callback], 1 if lock else 0)
        self._mshrs[line_addr] = entry
        if lock:
            set_idx = self._set_index(line_addr)
            self._pending_locked_fills[set_idx] = \
                self._pending_locked_fills.get(set_idx, 0) + 1
        self.next_level.read(line_addr, now + self.config.hit_latency,
                             lambda t, a=line_addr: self._fill(a, t))

    def _fill(self, line_addr: int, now: int) -> None:
        entry = self._mshrs.pop(line_addr)
        set_idx = self._set_index(line_addr)
        if entry.lock_count:
            remaining = self._pending_locked_fills.get(set_idx, 1) - 1
            if remaining:
                self._pending_locked_fills[set_idx] = remaining
            else:
                self._pending_locked_fills.pop(set_idx, None)
        self._insert(line_addr, entry.lock_count)
        if self.faults.enabled:
            self.faults.cache_fill(self, line_addr)
        if self.tracer.enabled:
            self.tracer.mem_fill(now, self.trace_label, line_addr)
        for callback in entry.callbacks:
            callback(now)
        # MSHR freed: admit waiting requests.  Keep draining while MSHRs
        # are free — an admitted request may hit or merge (consuming no
        # MSHR), and stopping after one would strand the rest forever.
        while self._mshr_wait and len(self._mshrs) < self.config.num_mshrs:
            addr, cb, lock = self._mshr_wait.popleft()
            self._retry(addr, now, cb, lock)

    def _retry(self, line_addr: int, now: int,
               callback: Callable[[int], None], lock: bool) -> None:
        """Re-issue a request that stalled waiting for an MSHR.  Stats and
        port admission were already charged when the request first arrived,
        so this path must not go back through :meth:`read` — doing so would
        double-count ``accesses``/``misses`` and pay ``_admit`` twice."""
        line = self._lookup(line_addr)
        if line is not None:
            self._use_clock += 1
            line.last_use = self._use_clock
            if lock:
                line.lock_count += 1
            self.events.schedule(now + self.config.hit_latency, callback)
            return
        self._miss(line_addr, now, callback, lock)

    def _insert(self, line_addr: int, lock_count: int) -> None:
        ways = self._sets[self._set_index(line_addr)]
        victim = None
        for line in ways:
            if not line.valid:
                victim = line
                break
        if victim is None:
            unlocked = [l for l in ways if l.lock_count == 0]
            if not unlocked:
                # Every way locked by the AEU (bounded by ways-1) *plus*
                # non-affine fills racing in: deliver without caching.
                self.stats.add(self._k_locked_bypass)
                return
            victim = min(unlocked, key=lambda l: l.last_use)
            self.stats.add(self._k_evictions)
        self._use_clock += 1
        victim.tag = line_addr // self.config.line_size
        victim.valid = True
        victim.lock_count = lock_count
        victim.last_use = self._use_clock

    # ---- writes (write-through, no write-allocate) -----------------------

    def write(self, line_addr: int, now: int) -> None:
        start = self._admit(now)
        self.stats.add(self._k_writes)
        line = self._lookup(line_addr)
        if line is not None:
            self._use_clock += 1
            line.last_use = self._use_clock
        self.next_level.write(line_addr, start + 1)

    # ---- DAC locking ------------------------------------------------------

    def can_lock(self, line_addr: int) -> bool:
        """Whether the AEU may lock this line without risking a fully locked
        set (paper §4.2: at most N-1 ways of an N-way cache)."""
        set_idx = self._set_index(line_addr)
        line = self._lookup(line_addr)
        if line is not None and line.lock_count > 0:
            return True                       # re-locking an already locked line
        locked_ways = sum(1 for l in self._sets[set_idx]
                          if l.valid and l.lock_count > 0)
        locked_ways += self._pending_locked_fills.get(set_idx, 0)
        return locked_ways < self.config.ways - 1

    def unlock(self, line_addr: int) -> None:
        line = self._lookup(line_addr)
        if line is not None and line.lock_count > 0:
            line.lock_count -= 1

    def locked_lines(self) -> int:
        return sum(1 for ways in self._sets for l in ways
                   if l.valid and l.lock_count > 0)
