"""Memory subsystem: coalescer, caches with DAC lock support, DRAM."""

from .cache import SetAssocCache
from .coalescer import (CoalesceCache, LINE_SHIFT, LINE_SIZE, coalesce,
                        line_of, word_mask)
from .dram import DRAM, PerfectMemory
from .hierarchy import LatencyChannel, MemoryHierarchy

__all__ = [
    "CoalesceCache", "DRAM", "LINE_SHIFT", "LINE_SIZE", "LatencyChannel",
    "MemoryHierarchy", "PerfectMemory", "SetAssocCache", "coalesce",
    "line_of", "word_mask",
]
