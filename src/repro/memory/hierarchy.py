"""Wiring: per-SM L1 caches -> interconnect -> shared L2 -> DRAM."""

from __future__ import annotations

from typing import Callable

from ..config import GPUConfig
from ..events import EventQueue
from ..faults.plan import NULL_FAULTS
from ..stats import Stats
from ..trace.tracer import NULL_TRACER
from .cache import SetAssocCache
from .dram import DRAM, PerfectMemory


class LatencyChannel:
    """Fixed-latency link between two memory levels (the interconnect)."""

    def __init__(self, next_level, delay: int, events: EventQueue):
        self.next_level = next_level
        self.delay = delay
        self.events = events

    def read(self, line_addr: int, now: int,
             callback: Callable[[int], None]) -> None:
        self.events.schedule(
            now + self.delay,
            lambda t: self.next_level.read(
                line_addr, t,
                lambda t2: self.events.schedule(t2 + self.delay, callback)))

    def write(self, line_addr: int, now: int) -> None:
        self.events.schedule(
            now + self.delay,
            lambda t: self.next_level.write(line_addr, t))


class MemoryHierarchy:
    """The full memory system for one GPU instance.

    With ``config.perfect_memory`` every global access completes in a fixed
    handful of cycles — the classification configuration of §5.1.2.
    """

    def __init__(self, config: GPUConfig, events: EventQueue, stats: Stats,
                 tracer=NULL_TRACER, faults=NULL_FAULTS):
        self.config = config
        self.events = events
        self.stats = stats
        if config.perfect_memory:
            endpoint = PerfectMemory(events)
            self.l2 = None
            self.dram = None
            self.l1s = [endpoint for _ in range(config.num_sms)]
            self._perfect = True
            return
        self._perfect = False
        self.dram = DRAM(config.dram, events, stats, faults=faults)
        self.l2 = SetAssocCache("l2", config.l2, self.dram, events, stats,
                                tracer=tracer, faults=faults)
        icnt = LatencyChannel(self.l2, config.interconnect_latency, events)
        self.l1s = [
            SetAssocCache("l1", config.l1, icnt, events, stats,
                          tracer=tracer, trace_label=f"l1.{i}",
                          faults=faults)
            for i in range(config.num_sms)
        ]

    @property
    def perfect(self) -> bool:
        return self._perfect

    def l1_of(self, sm_index: int):
        return self.l1s[sm_index]
