"""Many-Thread-Aware prefetching baseline (Lee et al. [15], paper §5.1.1).

MTA observes the strides between the cache lines demanded by successive
executions of each load PC (inter-warp / intra-warp regularity), and on a
confident stride issues speculative prefetches for the next lines.  Per the
paper's generous provisioning, prefetched data lands in a dedicated 16 KB
per-SM prefetch buffer rather than the L1 (avoiding pollution), and a
throttling mechanism watches prefetch accuracy: lines evicted unused push
the aggressiveness down.

Unlike DAC's early requests, prefetches are speculative: they can be wrong,
late, or evicted before use — which is why MTA trails DAC on the paper's
memory-bound suite (Fig. 16a vs Fig. 20).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

from ..isa import Instruction
from ..memory.coalescer import LINE_SIZE
from ..sim.sm import SM
from ..sim.warp import WarpContext


@dataclass
class _StrideEntry:
    last_line: int = -1
    delta: int = 0
    confidence: int = 0


class PrefetchBuffer:
    """FIFO prefetch buffer; tracks per-line readiness and usefulness."""

    def __init__(self, capacity_lines: int):
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, dict] = OrderedDict()

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def state(self, line: int) -> dict | None:
        return self._lines.get(line)

    def insert_pending(self, line: int) -> list[dict]:
        """Reserve a slot for an in-flight prefetch; returns the entries
        evicted to make room (with their 'used' flags and any still-waiting
        demand callbacks intact)."""
        evicted = []
        while len(self._lines) >= self.capacity:
            addr, victim = self._lines.popitem(last=False)
            victim["line"] = addr
            evicted.append(victim)
        self._lines[line] = {"ready": False, "used": False, "waiters": []}
        return evicted

    def fill(self, line: int) -> list:
        state = self._lines.get(line)
        if state is None:
            return []                         # evicted while in flight
        state["ready"] = True
        waiters, state["waiters"] = state["waiters"], []
        return waiters

    def mark_used(self, line: int) -> None:
        state = self._lines.get(line)
        if state is not None:
            state["used"] = True


class MTASM(SM):
    """SM with the MTA prefetcher attached to its global-load path."""

    def __init__(self, gpu, index: int):
        super().__init__(gpu, index)
        mta = self.config.mta
        self.table: OrderedDict[int, _StrideEntry] = OrderedDict()
        self.buffer = PrefetchBuffer(mta.buffer_bytes // LINE_SIZE)
        self.degree = mta.prefetch_degree
        self._table_cap = mta.table_entries   # hoisted off the train path
        self._window: deque[int] = deque()    # recent evictions: 1=used

    # ---- the load-path hook ------------------------------------------------

    def issue_line_read(self, warp: WarpContext, inst: Instruction,
                        line: int, now: int, callback) -> None:
        self._train_and_prefetch(inst, line, now)
        state = self.buffer.state(line)
        if state is not None:
            self.buffer.mark_used(line)
            self.stats.add("mta.buffer_hits")
            if state["ready"]:
                self.events.schedule(now + self.config.l1.hit_latency,
                                     callback)
            else:
                state["waiters"].append(callback)   # merge with in-flight
            return
        if not self.l1.contains(line) and not self.l1.in_flight(line):
            self.stats.add("mta.uncovered_misses")
        self.l1.read(line, now, callback)

    # ---- training + issue ----------------------------------------------

    def _train_and_prefetch(self, inst: Instruction, line: int,
                            now: int) -> None:
        entry = self.table.get(inst.uid)
        if entry is None:
            if len(self.table) >= self._table_cap:
                self.table.popitem(last=False)
            entry = _StrideEntry()
            self.table[inst.uid] = entry
        if entry.last_line >= 0:
            delta = line - entry.last_line
            if delta != 0 and delta == entry.delta:
                entry.confidence = min(entry.confidence + 1, 4)
            else:
                entry.delta = delta
                entry.confidence = 0
        entry.last_line = line
        if entry.confidence < 1 or self.degree == 0:
            return
        for k in range(1, self.degree + 1):
            target = line + entry.delta * k
            if target < 0 or target in self.buffer \
                    or self.l1.contains(target):
                continue
            self._issue_prefetch(target, now)

    def _issue_prefetch(self, line: int, now: int) -> None:
        self.stats.add("mta.prefetches")
        for victim in self.buffer.insert_pending(line):
            self._record_eviction(victim, now)
        # Prefetches bypass the L1 (dedicated buffer) but consume L2/DRAM
        # bandwidth like any other request.
        self.l1.next_level.read(
            line, now, lambda t, l=line: self._on_prefetch_fill(l, t))

    def _on_prefetch_fill(self, line: int, now: int) -> None:
        for waiter in self.buffer.fill(line):
            self.stats.add("mta.late_prefetch_hits")
            waiter(now)

    # ---- throttling ------------------------------------------------------

    def _record_eviction(self, victim: dict, now: int) -> None:
        # An in-flight victim may still have demand loads waiting on it:
        # re-route them to the regular L1 path so they are never dropped.
        for waiter in victim.get("waiters", ()):
            self.stats.add("mta.orphaned_waiters")
            self.l1.read(victim["line"], now, waiter)
        self._window.append(1 if victim["used"] else 0)
        self.stats.add("mta.evictions")
        if not victim["used"]:
            self.stats.add("mta.useless_prefetches")
        window = self.config.mta.throttle_window
        if len(self._window) < window:
            return
        accuracy = sum(self._window) / len(self._window)
        self._window.clear()
        if accuracy < self.config.mta.throttle_low_accuracy:
            self.degree = max(1, self.degree // 2)
            self.stats.add("mta.throttle_down")
        elif self.degree < self.config.mta.prefetch_degree:
            self.degree += 1
            self.stats.add("mta.throttle_up")
