"""Comparison baselines: CAE (affine units) and MTA (GPU prefetcher)."""

from .cae import CAESM
from .mta import MTASM, PrefetchBuffer

__all__ = ["CAESM", "MTASM", "PrefetchBuffer"]
