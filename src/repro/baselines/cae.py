"""Compact Affine Execution baseline (Kim et al. [13], paper §5.1.1).

CAE adds affine functional units beside the SIMT lanes and *dynamically*
tracks which registers hold affine values (a base + a single per-lane
stride across the warp).  Warp instructions whose operands are affine and
whose opcode the affine unit supports execute there instead of on the SIMT
lanes, halving their issue occupancy (two affine units, one per scheduler).
CAE removes redundancy only *within* a warp — every warp still executes
every instruction, which is exactly the limitation DAC lifts (Fig. 3).

CAE cannot execute affine instructions after divergence and requires all 32
threads of a warp to follow a single stride pattern (so benchmarks whose
last-level block dimension is under 32, like BP, only get scalar coverage —
§5.4).
"""

from __future__ import annotations

import numpy as np

from ..isa import CAE_CAPABLE_OPS, Immediate, Instruction, Opcode, Param, \
    PredReg, Register, SpecialReg
from ..sim.sm import SM
from ..sim.warp import WarpContext


def _value_stride(values) -> float | None:
    """The per-lane stride if ``values`` is an arithmetic sequence over the
    warp, else None.  Scalars have stride 0."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        return 0.0
    diffs = np.diff(arr)
    stride = float(diffs[0]) if len(diffs) else 0.0
    if np.all(diffs == stride):
        return stride
    return None


class CAESM(SM):
    """SM with two affine functional units (runtime affine tracking)."""

    # The issue interval depends on runtime affine-eligibility decided
    # inside issue() — not the static decode — so the batched engine's
    # chain replay (which assumes plain SIMT-lane ALU timing) opts out.
    chain_ok = False

    def __init__(self, gpu, index: int):
        super().__init__(gpu, index)
        self._issued_affine = False

    # ---- operand stride inspection --------------------------------------

    def _operand_stride(self, warp: WarpContext, op) -> float | None:
        if isinstance(op, Register):
            return warp.cae_stride.get(op.name)
        if isinstance(op, (Immediate, Param)):
            return 0.0
        if isinstance(op, SpecialReg):
            return _value_stride(warp.special(op.family, op.dim))
        if isinstance(op, PredReg):
            return None
        return None

    def _affine_eligible(self, warp: WarpContext, inst: Instruction,
                         mask) -> bool:
        if inst.opcode not in CAE_CAPABLE_OPS:
            return False
        if inst.guard is not None:
            return False                      # no predication on affine units
        if not warp.mask_is_initial(mask):
            return False                      # no divergence support [13]
        strides = [self._operand_stride(warp, op) for op in inst.srcs]
        if any(s is None for s in strides):
            return False
        if inst.opcode in (Opcode.MUL, Opcode.MAD):
            # The product needs at least one uniform (stride-0) side.
            a, b = strides[0], strides[1]
            if a != 0.0 and b != 0.0:
                return False
        return True

    # ---- hooks -------------------------------------------------------------

    def issue(self, warp, decoded, now: int) -> int:
        self._issued_affine = False
        interval = super().issue(warp, decoded, now)
        inst = decoded.inst
        if isinstance(warp, WarpContext) and inst.written_regs() \
                and not decoded.counts_alu:
            # Loads (and any non-ALU writer) break the affine tag.
            for dst in inst.written_regs():
                if isinstance(dst, Register):
                    warp.cae_stride[dst.name] = None
        if self._issued_affine:
            return 1                           # affine unit: off the lanes
        return interval

    def on_alu_executed(self, warp: WarpContext, inst: Instruction,
                        mask) -> None:
        eligible = self._affine_eligible(warp, inst, mask)
        if eligible:
            self._issued_affine = True
            self.stats.add("cae.affine_instructions")
            # The affine unit computes the (base, stride) pair: roughly two
            # ALU ops instead of 32 lane ops.
            self.stats.add("cae.affine_alu_ops", 2)
            self.stats.add("alu_ops", -warp.mask_count(mask) + 2)
        for dst in inst.written_regs():
            if not isinstance(dst, Register):
                continue
            if warp.mask_all(mask) or warp.mask_is_initial(mask):
                warp.cae_stride[dst.name] = _value_stride(
                    warp.regs.get(dst.name, 0.0))
            else:
                warp.cae_stride[dst.name] = None
