"""The decoupling transform: one kernel -> affine + non-affine streams.

Implements paper §4.7: identify affine memory/predicate instructions, check
divergence constraints (≤ 2 divergent affine conditions, no data-dependent
control, no loop-carried divergent tuples), then split:

* eligible loads become ``enq.data`` (affine) / ``ld dst, deq.data``
  (non-affine);
* eligible stores become ``enq.addr`` / ``st [deq.addr], value``;
* eligible predicate computations stay in the affine stream (the affine
  warp needs them for control flow), gain an ``enq.pred``, and are replaced
  by ``mov p, deq.pred`` in the non-affine stream;
* control flow with scalar/affine predicates is replicated into both
  streams; barriers are replicated; everything else stays non-affine.

Dead predecessor instructions are removed from the non-affine stream when no
remaining non-affine instruction depends on them.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..affine import OperandClass
from ..isa import (
    DeqToken,
    Instruction,
    Kernel,
    MemSpace,
    Opcode,
    PredReg,
    Register,
)
from .affine_analysis import AffineAnalysis

#: §4.6: at most this many divergent affine conditions per decoupled operand.
MAX_CONDITIONS = 2


@dataclass
class DecoupledProgram:
    """Result of decoupling one kernel."""

    original: Kernel
    affine: Kernel | None            # None: kernel could not be decoupled
    nonaffine: Kernel
    analysis: AffineAnalysis
    num_queues: int = 0
    decoupled_loads: int = 0         # static counts
    decoupled_stores: int = 0
    decoupled_preds: int = 0
    removed_instructions: int = 0    # dropped from the non-affine stream
    queue_origin: dict = field(default_factory=dict)   # qid -> original idx
    #: Per-stream provenance: affine_origin[i] / nonaffine_origin[i] is the
    #: original-kernel index the i-th stream instruction derives from.
    affine_origin: list = field(default_factory=list)
    nonaffine_origin: list = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def is_decoupled(self) -> bool:
        return self.affine is not None and self.num_queues > 0

    def _queue_lines(self) -> list[str]:
        lines = []
        for qid in sorted(self.queue_origin):
            idx = self.queue_origin[qid]
            inst = self.original.instructions[idx]
            where = (f"line {inst.source_line}" if inst.source_line
                     else f"index {idx}")
            lines.append(f"  q{qid}: {inst.opcode.value} at {where}")
        return lines

    def summary(self) -> str:
        if not self.is_decoupled:
            return (f"{self.original.name}: not decoupled "
                    f"({'; '.join(self.notes) or 'no eligible instructions'})")
        head = (f"{self.original.name}: {self.decoupled_loads} loads, "
                f"{self.decoupled_stores} stores, {self.decoupled_preds} "
                f"predicates decoupled; {self.removed_instructions} of "
                f"{len(self.original)} instructions removed from the "
                f"non-affine stream; affine stream has {len(self.affine)}")
        return "\n".join([head] + self._queue_lines())


class Decoupler:
    """Runs the decoupling pass on one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.analysis = AffineAnalysis(kernel)
        self.reaching = self.analysis.reaching

    # ---- branch inclusion fixpoint -------------------------------------

    def _included_branches(self) -> tuple[set[int], set[int]]:
        """Split conditional branches into (included, excluded) for the
        affine stream.  A branch is excluded when its predicate is
        non-affine, its predicate slice contains non-affine work, or it
        lives under an excluded branch."""
        insts = self.kernel.instructions
        conditional = [i for i, inst in enumerate(insts)
                       if inst.is_branch and inst.guard is not None]
        excluded = {i for i in conditional
                    if self.analysis.branch_kind(i) == "nonaffine"}
        changed = True
        while changed:
            changed = False
            for idx in conditional:
                if idx in excluded:
                    continue
                bad = False
                if any(b in excluded
                       for b in self.analysis.control_deps.get(idx, ())):
                    bad = True
                else:
                    for d in self.reaching.backward_slice({idx}):
                        if self.analysis.def_class[d] is \
                                OperandClass.NONAFFINE \
                                or insts[d].is_load \
                                or any(b in excluded for b in
                                       self.analysis.control_deps.get(d, ())):
                            bad = True
                            break
                if bad:
                    excluded.add(idx)
                    changed = True
        included = {i for i in conditional if i not in excluded}
        return included, excluded

    def _placeable(self, idx: int, excluded: set[int]) -> bool:
        """Whether an instruction may live in the affine stream: it must not
        sit under any branch the affine warp cannot evaluate."""
        return not any(b in excluded
                       for b in self.analysis.control_deps.get(idx, ()))

    # ---- candidate selection ----------------------------------------------

    def _slice_roots(self, idx: int):
        """Register-follow filter for a candidate's backward slice: only the
        address operand (and guard) of memory ops; both operands of setp."""
        inst = self.kernel.instructions[idx]
        if inst.is_memory:
            ref = inst.mem_ref()
            names = set()
            if isinstance(ref.address, Register):
                names.add(ref.address.name)
            if isinstance(inst.guard, PredReg):
                names.add(inst.guard.name)
            return lambda i, reg: reg in names
        return None                       # setp: follow everything

    def _candidate_ok(self, idx: int, excluded: set[int]) -> bool:
        insts = self.kernel.instructions
        inst = insts[idx]
        if not self._placeable(idx, excluded):
            return False
        if isinstance(inst.guard, PredReg):
            guard_class = self.analysis.operand_class(idx, inst.guard)
            if guard_class is OperandClass.NONAFFINE:
                return False
        slice_ = self.reaching.backward_slice({idx}, self._slice_roots(idx))
        for d in slice_:
            if self.analysis.def_class[d] is OperandClass.NONAFFINE \
                    or insts[d].is_load \
                    or not self._placeable(d, excluded):
                return False
        conditions = self.analysis.affine_conditions(slice_)
        # Predicated writes (@p mov ...) with a thread-divergent guard are
        # divergent conditions too: each creates a guarded tuple at runtime.
        guard_conditions = set()
        for d in slice_:
            guard = insts[d].guard
            if isinstance(guard, PredReg) and \
                    self.analysis.operand_class(d, guard) \
                    is OperandClass.AFFINE:
                guard_conditions.add(guard.name)
        if len(conditions) + len(guard_conditions) > MAX_CONDITIONS:
            return False
        # Loop-carried divergent tuples are not decoupled (§4.6): a def that
        # diverges per thread (branch region or affine guard) inside a loop
        # would accumulate unboundedly many guarded tuples.
        for d in slice_:
            guard = insts[d].guard
            divergent = any(self.analysis.branch_kind(b) == "affine"
                            for b in self.analysis.control_deps.get(d, ())) \
                or (isinstance(guard, PredReg)
                    and self.analysis.operand_class(d, guard)
                    is OperandClass.AFFINE)
            if divergent and self.analysis.in_loop(d):
                return False
        return True

    def candidate_map(self) -> dict[int, str]:
        """Public view of the pass's eligibility decision: original-kernel
        index -> queue kind, for everything the compiler *would* decouple.
        Used by the certifier's missed-optimization scan (RPL051)."""
        _, excluded = self._included_branches()
        return self._find_candidates(excluded)

    def _find_candidates(self, excluded: set[int]) -> dict[int, str]:
        """Map of instruction index -> queue kind ('data'/'addr'/'pred')."""
        out: dict[int, str] = {}
        for idx, inst in enumerate(self.kernel.instructions):
            if inst.is_memory and inst.space in (MemSpace.GLOBAL,
                                                 MemSpace.LOCAL):
                if self.analysis.address_class(idx) is OperandClass.NONAFFINE:
                    continue
                if not self._candidate_ok(idx, excluded):
                    continue
                out[idx] = "data" if inst.is_load else "addr"
            elif inst.opcode is Opcode.SETP:
                classes = [self.analysis.operand_class(idx, op)
                           for op in inst.srcs]
                if OperandClass.NONAFFINE in classes:
                    continue
                if self.analysis.def_class.get(idx) is OperandClass.NONAFFINE:
                    continue
                if not self._candidate_ok(idx, excluded):
                    continue
                out[idx] = "pred"
        return out

    # ---- stream construction -------------------------------------------

    def run(self) -> DecoupledProgram:
        insts = self.kernel.instructions
        # Barriers under data-dependent control would desynchronize the
        # AEU's barrier gating; fall back to no decoupling.
        for idx, inst in enumerate(insts):
            if inst.is_barrier and self.analysis.nonaffine_control_dep(idx):
                return self._not_decoupled("barrier under data-dependent "
                                           "control flow")

        included, excluded = self._included_branches()
        candidates = self._find_candidates(excluded)
        if not candidates:
            return self._not_decoupled("no eligible affine instructions")

        # Only decouple predicates that some surviving branch/instruction in
        # the non-affine stream actually consumes; a setp is always consumed
        # when its register guards a branch (branches stay non-affine).
        queue_ids: dict[int, int] = {}
        for n, idx in enumerate(sorted(candidates)):
            queue_ids[idx] = n

        # Affine stream slice: every def feeding a candidate or an included
        # branch.
        slice_union: set[int] = set()
        for idx in candidates:
            slice_union |= self.reaching.backward_slice(
                {idx}, self._slice_roots(idx))
        for idx in included:
            slice_union |= self.reaching.backward_slice({idx})
        slice_union = {d for d in slice_union
                       if self._placeable(d, excluded)
                       and self.analysis.def_class[d] is not
                       OperandClass.NONAFFINE
                       and not insts[d].is_load}

        affine_list = self._build_affine(candidates, queue_ids, included,
                                         slice_union)
        nonaffine_list, removed = self._build_nonaffine(candidates,
                                                        queue_ids)

        program = DecoupledProgram(
            original=self.kernel,
            affine=self._assemble("affine_" + self.kernel.name, affine_list),
            nonaffine=self._assemble("na_" + self.kernel.name,
                                     nonaffine_list),
            analysis=self.analysis,
            num_queues=len(queue_ids),
            decoupled_loads=sum(1 for k in candidates.values()
                                if k == "data"),
            decoupled_stores=sum(1 for k in candidates.values()
                                 if k == "addr"),
            decoupled_preds=sum(1 for k in candidates.values()
                                if k == "pred"),
            removed_instructions=removed,
            queue_origin={qid: idx for idx, qid in queue_ids.items()},
            affine_origin=[idx for idx, _ in affine_list],
            nonaffine_origin=[idx for idx, _ in nonaffine_list],
        )
        return program

    def _not_decoupled(self, reason: str) -> DecoupledProgram:
        return DecoupledProgram(original=self.kernel, affine=None,
                                nonaffine=self.kernel,
                                analysis=self.analysis, notes=[reason],
                                nonaffine_origin=list(
                                    range(len(self.kernel))))

    def _build_affine(self, candidates: dict[int, str],
                      queue_ids: dict[int, int], included: set[int],
                      slice_union: set[int]) -> list[tuple[int, Instruction]]:
        insts = self.kernel.instructions
        out: list[tuple[int, Instruction]] = []
        for idx, inst in enumerate(insts):
            if idx in candidates:
                kind = candidates[idx]
                if kind == "pred":
                    out.append((idx, inst.clone()))
                    out.append((idx, Instruction(
                        Opcode.ENQ_PRED, srcs=(inst.dsts[0],),
                        guard=inst.guard, guard_negated=inst.guard_negated,
                        queue_id=queue_ids[idx],
                        source_line=inst.source_line)))
                else:
                    ref = inst.mem_ref()
                    src = (ref if ref.displacement else ref.address)
                    opcode = (Opcode.ENQ_DATA if kind == "data"
                              else Opcode.ENQ_ADDR)
                    out.append((idx, Instruction(
                        opcode, srcs=(src,), guard=inst.guard,
                        guard_negated=inst.guard_negated, space=inst.space,
                        queue_id=queue_ids[idx],
                        source_line=inst.source_line)))
                continue
            if inst.is_branch:
                excluded = {b for b in range(len(insts))
                            if insts[b].is_branch
                            and insts[b].guard is not None
                            and b not in included}
                keep = inst.guard is None or idx in included
                if keep and self._placeable(idx, excluded):
                    out.append((idx, inst.clone()))
                continue
            if inst.is_barrier or inst.is_exit:
                out.append((idx, inst.clone()))
                continue
            if idx in slice_union:
                out.append((idx, inst.clone()))
        return out

    def _build_nonaffine(self, candidates: dict[int, str],
                         queue_ids: dict[int, int]) \
            -> tuple[list[tuple[int, Instruction]], int]:
        insts = self.kernel.instructions
        replaced: dict[int, Instruction] = {}
        for idx, kind in candidates.items():
            inst = insts[idx]
            qid = queue_ids[idx]
            if kind == "data":
                replaced[idx] = inst.clone(srcs=(DeqToken("data", qid),))
            elif kind == "addr":
                replaced[idx] = inst.clone(dsts=(DeqToken("addr", qid),))
            else:
                replaced[idx] = Instruction(
                    Opcode.MOV, dsts=(inst.dsts[0],),
                    srcs=(DeqToken("pred", qid),), guard=inst.guard,
                    guard_negated=inst.guard_negated,
                    source_line=inst.source_line)

        # Essential: control flow, memory, barriers, exits, every deq.
        essential: set[int] = set()
        for idx, inst in enumerate(insts):
            eff = replaced.get(idx, inst)
            if (eff.is_branch or eff.is_barrier or eff.is_exit
                    or eff.is_memory
                    or any(isinstance(o, DeqToken)
                           for o in eff.dsts + eff.srcs)
                    or isinstance(eff.guard, DeqToken)):
                essential.add(idx)

        # Keep transitive register dependencies of essential instructions,
        # but do not follow through a replaced instruction's removed
        # operands: a deq-load no longer reads its address register.
        keep = set(essential)
        worklist = list(essential)
        while worklist:
            idx = worklist.pop()
            eff = replaced.get(idx, insts[idx])
            for op in eff.read_regs():
                for d in self.reaching.reaching(idx, op.name):
                    if d not in keep:
                        keep.add(d)
                        worklist.append(d)
            if eff.guard is not None and isinstance(eff.guard, PredReg):
                pass                      # read_regs already includes guards
            if eff.guard is not None and eff.written_regs():
                for dst in eff.written_regs():
                    for d in self.reaching.reaching(idx, dst.name):
                        if d not in keep:
                            keep.add(d)
                            worklist.append(d)

        out = [(idx, replaced.get(idx, insts[idx]).clone()
                if idx in keep else None)
               for idx in range(len(insts))]
        kept = [(idx, inst) for idx, inst in out if inst is not None]
        removed = len(insts) - len(kept)
        return kept, removed

    def _assemble(self, name: str,
                  items: list[tuple[int, Instruction]]) -> Kernel:
        """Build a Kernel from (original_index, instruction) pairs with
        branch labels remapped to the nearest surviving instruction."""
        orig_indices = [idx for idx, _ in items]
        instructions = [inst for _, inst in items]
        labels: dict[str, int] = {}
        for label, target in self.kernel.labels.items():
            new_target = bisect.bisect_left(orig_indices, target)
            labels[label] = min(new_target, len(instructions) - 1)
        # Drop branches to labels that no longer exist in this stream; keep
        # only labels actually referenced (plus all, harmlessly).
        return Kernel(name=name, params=self.kernel.params,
                      instructions=instructions, labels=labels)


def decouple(kernel: Kernel) -> DecoupledProgram:
    """Run the decoupling compiler on a kernel."""
    return Decoupler(kernel).run()
