"""Affine operand classification and control-dependence analysis (§4.7).

Implements the paper's iterative type propagation over the CFG: every
operand is scalar, affine, or non-affine; definitions start scalar and are
promoted monotonically until a fixpoint.  Also classifies branches by the
class of their predicate (scalar branches are uniform per CTA, affine
branches diverge along thread IDs, non-affine branches are data dependent)
and computes which instructions are control-dependent on which branches.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from ..affine import OperandClass, join, leaf_class, result_class
from ..isa import Kernel, PredReg
from .cfg import CFG
from .dataflow import ReachingDefs


class AffineAnalysis:
    """All static analyses the decoupler needs, for one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.cfg = CFG(kernel)
        self.reaching = ReachingDefs(kernel, self.cfg)
        #: class of the value each defining instruction writes
        self.def_class: dict[int, OperandClass] = {}
        self._classify()
        self.control_deps = self._control_dependence()
        self.loop_blocks = self._loop_blocks()

    # ---- classification fixpoint ---------------------------------------

    def _use_class(self, inst_index: int, op) -> OperandClass:
        leaf = leaf_class(op)
        if leaf is not None:
            return leaf
        defs = self.reaching.reaching(inst_index, op.name)
        if not defs:
            return OperandClass.SCALAR       # read-before-write: zero
        return join(*(self.def_class.get(d, OperandClass.SCALAR)
                      for d in defs))

    def _classify(self) -> None:
        insts = self.kernel.instructions
        for idx, inst in enumerate(insts):
            if inst.written_regs():
                self.def_class[idx] = OperandClass.SCALAR
        changed = True
        while changed:
            changed = False
            for idx, inst in enumerate(insts):
                if not inst.written_regs():
                    continue
                src_classes = [self._use_class(idx, op) for op in inst.srcs]
                new = result_class(inst.opcode, src_classes, inst.cmp)
                if isinstance(inst.guard, PredReg):
                    # A guarded write merges with the previous value: the
                    # observable result joins the old definitions, and a
                    # non-affine guard makes the merge untrackable.
                    guard_class = self._use_class(idx, inst.guard)
                    if guard_class is OperandClass.NONAFFINE:
                        new = OperandClass.NONAFFINE
                    for dst in inst.written_regs():
                        for d in self.reaching.reaching(idx, dst.name):
                            new = join(new, self.def_class[d])
                if new != self.def_class[idx]:
                    self.def_class[idx] = new
                    changed = True

    # ---- per-instruction queries ------------------------------------------

    def operand_class(self, inst_index: int, op) -> OperandClass:
        return self._use_class(inst_index, op)

    def address_class(self, inst_index: int) -> OperandClass:
        """Class of a memory instruction's address computation."""
        ref = self.kernel.instructions[inst_index].mem_ref()
        if ref is None:
            return OperandClass.NONAFFINE
        return self._use_class(inst_index, ref.address)

    def branch_kind(self, inst_index: int) -> str:
        """'uniform' (no guard), 'scalar', 'affine', or 'nonaffine'."""
        inst = self.kernel.instructions[inst_index]
        if inst.guard is None:
            return "uniform"
        cls = self._use_class(inst_index, inst.guard)
        return {OperandClass.SCALAR: "scalar",
                OperandClass.AFFINE: "affine",
                OperandClass.NONAFFINE: "nonaffine"}[cls]

    def is_potentially_affine(self, inst_index: int) -> bool:
        """Paper Fig. 6: instructions computing on scalar data and thread
        IDs, before divergence and instruction-type restrictions apply."""
        inst = self.kernel.instructions[inst_index]
        if inst.is_memory:
            return self.address_class(inst_index) is not OperandClass.NONAFFINE
        if inst.is_branch:
            return self.branch_kind(inst_index) in ("uniform", "scalar",
                                                    "affine")
        if inst.is_barrier or inst.is_exit or inst.is_enq:
            return False
        if not inst.written_regs():
            return False
        return self.def_class[inst_index] is not OperandClass.NONAFFINE

    def potential_affine_fractions(self) -> dict[str, float]:
        """Fig. 6 data: fraction of static instructions that are potentially
        affine, per category (of all instructions)."""
        total = len(self.kernel.instructions)
        counts = defaultdict(int)
        for idx, inst in enumerate(self.kernel.instructions):
            if self.is_potentially_affine(idx):
                counts[inst.category] += 1
        return {cat: counts[cat] / total
                for cat in ("arithmetic", "memory", "branch")}

    # ---- control dependence ----------------------------------------------

    def _control_dependence(self) -> dict[int, set[int]]:
        """Map: instruction index -> set of conditional-branch instruction
        indices it is control-dependent on (region between the branch and
        its reconvergence point)."""
        deps: dict[int, set[int]] = defaultdict(set)
        insts = self.kernel.instructions
        for idx, inst in enumerate(insts):
            if not inst.is_branch or inst.guard is None:
                continue
            recon = self.cfg.reconvergence_pc(idx)
            recon_block = (self.cfg.block_of(recon).index
                           if recon < len(insts) else CFG.EXIT)
            branch_block = self.cfg.block_of(idx)
            seen: set[int] = set()
            stack = list(branch_block.successors)
            while stack:
                b = stack.pop()
                if b == recon_block or b in seen:
                    continue
                seen.add(b)
                stack.extend(self.cfg.blocks[b].successors)
            for b in seen:
                block = self.cfg.blocks[b]
                for i in range(block.start, block.end):
                    deps[i].add(idx)
            # The region between a branch and its reconvergence includes the
            # tail of the branch's own block?  No: the branch ends its block.
        return deps

    def _loop_blocks(self) -> set[int]:
        g = nx.DiGraph()
        for block in self.cfg.blocks:
            g.add_node(block.index)
            for s in block.successors:
                g.add_edge(block.index, s)
        loops: set[int] = set()
        for scc in nx.strongly_connected_components(g):
            if len(scc) > 1 or any(g.has_edge(n, n) for n in scc):
                loops |= scc
        return loops

    def in_loop(self, inst_index: int) -> bool:
        return self.cfg.block_of(inst_index).index in self.loop_blocks

    def nonaffine_control_dep(self, inst_index: int) -> bool:
        return any(self.branch_kind(b) == "nonaffine"
                   for b in self.control_deps.get(inst_index, ()))

    def affine_conditions(self, inst_indices: set[int]) -> set[int]:
        """Distinct affine (thread-divergent) branches that any of the given
        instructions is control-dependent on — the §4.6 'divergent affine
        conditions'."""
        conds: set[int] = set()
        for idx in inst_indices:
            for b in self.control_deps.get(idx, ()):
                if self.branch_kind(b) == "affine":
                    conds.add(b)
        return conds
