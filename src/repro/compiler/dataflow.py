"""Reaching-definition analysis over the kernel CFG (paper §4.7)."""

from __future__ import annotations

from collections import defaultdict

from ..isa import Kernel, PredReg
from .cfg import CFG


class ReachingDefs:
    """Classic iterative reaching definitions at instruction granularity.

    A *definition* is the index of an instruction that writes a register.
    ``reaching(idx, reg)`` returns the definition indices that may reach the
    entry of instruction ``idx`` for register ``reg`` (empty set = the
    register is read before any write; it evaluates as zero).
    """

    def __init__(self, kernel: Kernel, cfg: CFG):
        self.kernel = kernel
        self.cfg = cfg
        self._defs_of_reg: dict[str, set[int]] = defaultdict(set)
        for idx, inst in enumerate(kernel.instructions):
            for reg in inst.written_regs():
                self._defs_of_reg[reg.name].add(idx)
        self._block_in = self._solve()
        self._at_entry: list[dict[str, frozenset[int]]] = \
            self._per_instruction()

    # ---- block-level fixpoint ----------------------------------------

    def _block_gen_kill(self, block):
        gen: dict[str, int] = {}
        kill: set[str] = set()
        for idx in range(block.start, block.end):
            for reg in self.kernel.instructions[idx].written_regs():
                gen[reg.name] = idx
                kill.add(reg.name)
        return gen, kill

    def _solve(self):
        blocks = self.cfg.blocks
        gen_kill = [self._block_gen_kill(b) for b in blocks]
        block_in = [defaultdict(set) for _ in blocks]
        block_out = [defaultdict(set) for _ in blocks]
        changed = True
        while changed:
            changed = False
            for block in blocks:
                bin_ = defaultdict(set)
                for pred in block.predecessors:
                    for reg, defs in block_out[pred].items():
                        bin_[reg] |= defs
                gen, kill = gen_kill[block.index]
                bout = defaultdict(set)
                for reg, defs in bin_.items():
                    if reg not in kill:
                        bout[reg] |= defs
                for reg, def_idx in gen.items():
                    bout[reg].add(def_idx)
                if bout != block_out[block.index] or \
                        bin_ != block_in[block.index]:
                    block_in[block.index] = bin_
                    block_out[block.index] = bout
                    changed = True
        return block_in

    def _per_instruction(self):
        result = [dict() for _ in self.kernel.instructions]
        for block in self.cfg.blocks:
            live = {reg: frozenset(defs)
                    for reg, defs in self._block_in[block.index].items()}
            for idx in range(block.start, block.end):
                result[idx] = dict(live)
                inst = self.kernel.instructions[idx]
                for reg in inst.written_regs():
                    live = dict(live)
                    live[reg.name] = frozenset({idx})
        return result

    # ---- queries -----------------------------------------------------

    def reaching(self, inst_index: int, reg_name: str) -> frozenset[int]:
        return self._at_entry[inst_index].get(reg_name, frozenset())

    def source_defs(self, inst_index: int) -> dict[str, frozenset[int]]:
        """Reaching definitions for every register the instruction reads
        (guard included)."""
        inst = self.kernel.instructions[inst_index]
        return {op.name: self.reaching(inst_index, op.name)
                for op in inst.read_regs()}

    def backward_slice(self, roots: set[int],
                       reg_filter=None) -> set[int]:
        """All definitions transitively feeding the register sources of the
        ``roots`` instructions.  ``reg_filter(inst_index, reg_name)`` can
        restrict which source registers of a *root* are followed (e.g. only
        the address operand of a store)."""
        worklist = list(roots)
        slice_: set[int] = set()
        first = set(roots)
        while worklist:
            idx = worklist.pop()
            inst = self.kernel.instructions[idx]
            for op in inst.read_regs():
                if idx in first and reg_filter is not None \
                        and not reg_filter(idx, op.name):
                    continue
                for def_idx in self.reaching(idx, op.name):
                    if def_idx not in slice_:
                        slice_.add(def_idx)
                        worklist.append(def_idx)
            # Guarded writes merge with the previous value of the dest.
            if inst.guard is not None and isinstance(inst.guard, PredReg):
                for dst in inst.written_regs():
                    for def_idx in self.reaching(idx, dst.name):
                        if def_idx not in slice_:
                            slice_.add(def_idx)
                            worklist.append(def_idx)
        return slice_
