"""Decoupling compiler: CFG, dataflow, affine analysis, stream splitting."""

from .affine_analysis import AffineAnalysis
from .cfg import CFG, BasicBlock
from .dataflow import ReachingDefs
from .decouple import DecoupledProgram, Decoupler, decouple
from .verifier import VerificationReport, verify

__all__ = [
    "AffineAnalysis", "BasicBlock", "CFG", "DecoupledProgram", "Decoupler",
    "ReachingDefs", "VerificationReport", "decouple", "verify",
]
