"""Control-flow graph over kernel instructions.

Provides basic blocks, edges, immediate post-dominators (the reconvergence
points used by both the baseline SIMT stack and the compiler's divergent
affine analysis, paper §4.7 / Fig. 15), and reaching-definition preliminaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..isa import Instruction, Kernel


@dataclass
class BasicBlock:
    index: int                      # block id
    start: int                      # first instruction index
    end: int                        # one past last instruction index
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instructions(self, kernel: Kernel) -> list[Instruction]:
        return kernel.instructions[self.start:self.end]

    def __hash__(self) -> int:
        return self.index


class CFG:
    """Basic blocks + dominance info for one kernel."""

    EXIT = -1     # virtual exit node id in the block graph

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.blocks: list[BasicBlock] = []
        self._block_of_inst: list[int] = []
        self._build()
        self._ipdom = self._compute_ipdom()

    # ---- construction ----------------------------------------------------

    def _build(self) -> None:
        insts = self.kernel.instructions
        leaders = {0}
        for idx, inst in enumerate(insts):
            if inst.is_branch:
                leaders.add(self.kernel.target_index(inst.target))
                if idx + 1 < len(insts):
                    leaders.add(idx + 1)
            elif inst.is_exit and idx + 1 < len(insts):
                leaders.add(idx + 1)
        starts = sorted(leaders)
        bounds = list(zip(starts, starts[1:] + [len(insts)]))
        start_to_block = {s: i for i, (s, _) in enumerate(bounds)}
        self.blocks = [BasicBlock(i, s, e) for i, (s, e) in enumerate(bounds)]
        self._block_of_inst = [0] * len(insts)
        for block in self.blocks:
            for idx in range(block.start, block.end):
                self._block_of_inst[idx] = block.index
        for block in self.blocks:
            last = insts[block.end - 1]
            succs: list[int] = []
            if last.is_branch:
                succs.append(start_to_block[
                    self.kernel.target_index(last.target)])
                if last.guard is not None and block.end < len(insts):
                    succs.append(start_to_block[block.end])
            elif last.is_exit:
                pass
            elif block.end < len(insts):
                succs.append(start_to_block[block.end])
            block.successors = succs
            for s in succs:
                self.blocks[s].predecessors.append(block.index)

    def block_of(self, inst_index: int) -> BasicBlock:
        return self.blocks[self._block_of_inst[inst_index]]

    # ---- dominance ---------------------------------------------------------

    def _graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_node(self.EXIT)
        for block in self.blocks:
            g.add_node(block.index)
            for s in block.successors:
                g.add_edge(block.index, s)
            if not block.successors or \
                    self.kernel.instructions[block.end - 1].is_exit:
                g.add_edge(block.index, self.EXIT)
        return g

    def _compute_ipdom(self) -> dict[int, int]:
        """Immediate post-dominator per block (block ids; EXIT for none)."""
        reversed_graph = self._graph().reverse()
        idom = nx.immediate_dominators(reversed_graph, self.EXIT)
        return {b: d for b, d in idom.items() if b != self.EXIT}

    def reconvergence_pc(self, branch_index: int) -> int:
        """Instruction index where threads diverging at ``branch_index``
        reconverge; ``len(kernel)`` when they only meet at exit."""
        block = self.block_of(branch_index)
        ipdom = self._ipdom.get(block.index, self.EXIT)
        if ipdom == self.EXIT:
            return len(self.kernel.instructions)
        return self.blocks[ipdom].start

    def join_reconvergence(self, block_a: int, block_b: int) -> int:
        """First instruction index where paths through two blocks must have
        re-joined — the common post-dominator used by Divergent Affine
        Analysis (Fig. 15 ①) to place DCRF saves."""
        seen = set()
        node = block_a
        while node != self.EXIT:
            seen.add(node)
            node = self._ipdom.get(node, self.EXIT)
        node = block_b
        while node != self.EXIT:
            if node in seen and node not in (block_a, block_b):
                return self.blocks[node].start
            node = self._ipdom.get(node, self.EXIT)
        # Walk a's chain again including a/b themselves as last resort.
        node = block_b
        while node != self.EXIT:
            if node in seen:
                return self.blocks[node].start
            node = self._ipdom.get(node, self.EXIT)
        return len(self.kernel.instructions)

    # ---- traversal helpers ---------------------------------------------

    def reverse_postorder(self) -> list[int]:
        g = self._graph()
        g.remove_node(self.EXIT)
        order = list(nx.dfs_postorder_nodes(g, source=0))
        order.reverse()
        missing = [b.index for b in self.blocks if b.index not in set(order)]
        return order + missing
