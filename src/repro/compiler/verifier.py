"""Static verifier for decoupled programs.

The DAC hardware relies on the two streams agreeing dynamically: each
warp's sequence of dequeues must match the affine warp's sequence of
enqueues (per queue class, FIFO).  The decoupler guarantees this by
construction; this verifier re-derives the guarantees independently so a
compiler regression fails loudly at compile time rather than as a queue
mismatch deep inside a simulation.

Checks:

* **pairing** — enq queue ids and deq queue ids are the same bijection,
  and each pair originates from the same original instruction;
* **ordering** — within each basic block of each stream, queue operations
  appear in ascending original-program order, separately per queue class
  (PWAQ: data+addr interleaved; PWPQ: pred);
* **guards** — an enq and its deq carry the same guard (same predicate
  name and polarity), so warp-level masks agree at expansion and dequeue;
* **purity** — the affine stream contains no loads/stores (it may only
  observe read-only state: parameters, thread geometry) and the non-affine
  stream contains no enqueues;
* **barriers** — both streams contain the same number of barriers, in the
  same relative order against queue operations (by original index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import DeqToken, Instruction, Kernel, Opcode, PredReg
from .decouple import DecoupledProgram


@dataclass
class VerificationReport:
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def __str__(self) -> str:
        if self.ok:
            return "decoupling verified: no inconsistencies"
        return "decoupling FAILED verification:\n" + "\n".join(
            f"  - {e}" for e in self.errors)


def _deq_tokens(inst: Instruction):
    for op in inst.srcs + inst.dsts:
        if isinstance(op, DeqToken):
            yield op
    if isinstance(inst.guard, DeqToken):
        yield inst.guard


def _queue_class(kind: str) -> str:
    return "pwpq" if kind == "pred" else "pwaq"


def _guard_signature(inst: Instruction):
    if isinstance(inst.guard, PredReg):
        return (inst.guard.name, inst.guard_negated)
    return None


def _loc(kernel: Kernel, index: int) -> str:
    """``name[index] (line N)`` — where an offending instruction lives."""
    inst = kernel.instructions[index]
    line = "" if inst.source_line is None else f" (line {inst.source_line})"
    return f"{kernel.name}[{index}]{line}"


def verify(program: DecoupledProgram,
           semantic: bool = True) -> VerificationReport:
    """Run every structural check; with ``semantic=True`` (the default)
    also run the translation-validation certifier
    (:mod:`repro.analysis.certify`) and fold its errors into the report,
    upgrading verification from structural to semantic.  Returns a
    report (never raises)."""
    report = _verify_structural(program)
    if semantic and program.is_decoupled:
        # Imported lazily: analysis.certify itself calls back into this
        # module for the structural half.
        from ..analysis.certify import certify_program
        for diag in certify_program(program).errors:
            if diag.code == "RPL050":
                continue                 # already present structurally
            report.errors.append(diag.render())
    return report


def _verify_structural(program: DecoupledProgram) -> VerificationReport:
    report = VerificationReport()
    if not program.is_decoupled:
        return report

    enqs: dict[int, Instruction] = {}
    for idx, inst in enumerate(program.affine.instructions):
        if inst.is_enq:
            if inst.queue_id in enqs:
                report.errors.append(
                    f"duplicate enqueue for queue {inst.queue_id} at "
                    f"{_loc(program.affine, idx)}")
            enqs[inst.queue_id] = inst
        if inst.is_memory:
            report.errors.append(
                f"affine stream contains a memory access at "
                f"{_loc(program.affine, idx)}: {inst}")

    deqs: dict[int, Instruction] = {}
    for idx, inst in enumerate(program.nonaffine.instructions):
        if inst.is_enq:
            report.errors.append(
                f"non-affine stream contains an enqueue at "
                f"{_loc(program.nonaffine, idx)}: {inst}")
        for token in _deq_tokens(inst):
            if token.queue_id in deqs:
                report.errors.append(
                    f"duplicate dequeue for queue {token.queue_id} at "
                    f"{_loc(program.nonaffine, idx)}")
            deqs[token.queue_id] = inst

    # Pairing.
    enq_index = {inst.uid: i
                 for i, inst in enumerate(program.affine.instructions)}
    deq_index = {inst.uid: i
                 for i, inst in enumerate(program.nonaffine.instructions)}
    if set(enqs) != set(deqs):
        where = []
        for qid in sorted(set(enqs) - set(deqs)):
            where.append(f"queue {qid} enq at "
                         f"{_loc(program.affine, enq_index[enqs[qid].uid])} "
                         "has no deq")
        for qid in sorted(set(deqs) - set(enqs)):
            where.append(f"queue {qid} deq at "
                         f"{_loc(program.nonaffine, deq_index[deqs[qid].uid])} "
                         "has no enq")
        report.errors.append(
            f"queue id mismatch: enq={sorted(enqs)} deq={sorted(deqs)} "
            f"({'; '.join(where)})")
        return report
    if set(enqs) != set(program.queue_origin):
        stray = sorted(set(enqs) ^ set(program.queue_origin))
        locs = [_loc(program.affine, enq_index[enqs[q].uid])
                for q in stray if q in enqs]
        report.errors.append(
            f"queue ids do not match recorded origins: "
            f"unmatched={stray}"
            + (f" (enq at {', '.join(locs)})" if locs else ""))

    kind_of_enq = {Opcode.ENQ_DATA: "data", Opcode.ENQ_ADDR: "addr",
                   Opcode.ENQ_PRED: "pred"}
    for qid, enq in enqs.items():
        deq = deqs[qid]
        where = (f"enq at {_loc(program.affine, enq_index[enq.uid])}, "
                 f"deq at {_loc(program.nonaffine, deq_index[deq.uid])}")
        enq_kind = kind_of_enq[enq.opcode]
        deq_kind = next(_deq_tokens(deq)).kind
        if enq_kind != deq_kind:
            report.errors.append(
                f"queue {qid}: enq kind {enq_kind} vs deq kind {deq_kind} "
                f"({where})")
        if enq_kind != "pred" and \
                _guard_signature(enq) != _guard_signature(deq):
            report.errors.append(
                f"queue {qid}: guard mismatch "
                f"({_guard_signature(enq)} vs {_guard_signature(deq)}; "
                f"{where})")

    # Ordering: queue ids ascend with original program order, so checking
    # ascending qid order per block per class suffices.
    def check_order(kernel: Kernel, ids_of, label: str) -> None:
        from .cfg import CFG
        cfg = CFG(kernel)
        for block in cfg.blocks:
            last: dict[str, int] = {}
            for offset, inst in enumerate(block.instructions(kernel)):
                for cls, qid in ids_of(inst):
                    origin = program.queue_origin.get(qid, -1)
                    if cls in last and origin < last[cls]:
                        report.errors.append(
                            f"{label}: queue ops out of original order in "
                            f"block {block.index} (queue {qid}) at "
                            f"{_loc(kernel, block.start + offset)}")
                    last[cls] = origin

    def affine_ids(inst):
        if inst.is_enq:
            yield _queue_class(kind_of_enq[inst.opcode]), inst.queue_id

    def nonaffine_ids(inst):
        for token in _deq_tokens(inst):
            yield _queue_class(token.kind), token.queue_id

    check_order(program.affine, affine_ids, "affine stream")
    check_order(program.nonaffine, nonaffine_ids, "non-affine stream")

    # Barrier counts.
    affine_bars = [i for i, inst in enumerate(program.affine.instructions)
                   if inst.is_barrier]
    nonaffine_bars = [i for i, inst
                      in enumerate(program.nonaffine.instructions)
                      if inst.is_barrier]
    if len(affine_bars) != len(nonaffine_bars):
        spare_kernel, spare = (
            (program.affine, affine_bars[len(nonaffine_bars):])
            if len(affine_bars) > len(nonaffine_bars)
            else (program.nonaffine, nonaffine_bars[len(affine_bars):]))
        locs = ", ".join(_loc(spare_kernel, i) for i in spare)
        report.errors.append(
            f"barrier replication mismatch: affine {len(affine_bars)} vs "
            f"non-affine {len(nonaffine_bars)} (unmatched at {locs})")

    return report
