"""Simulation configuration (paper Table 1).

The default models the paper's baseline: a Fermi GTX 480 with 15 SMs, 48
warps/SM, 32 SIMT lanes, two schedulers per SM, 48 KB 4-way L1 per SM and a
768 KB 8-way L2 over 6 partitions.  Latency constants are chosen to land in
the ranges GPGPU-sim reports for Fermi (L1 hit ≈ tens of cycles, L2 round
trip ≈ 150, DRAM round trip ≈ 400+).

``GPUConfig.gtx480()`` is the paper configuration; ``GPUConfig.scaled(n)``
keeps per-SM resources identical but runs ``n`` SMs with L2 and DRAM
bandwidth scaled proportionally — used to keep Python-side experiment time
reasonable (see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    ways: int
    line_size: int = 128
    hit_latency: int = 28
    num_mshrs: int = 32
    accept_interval: float = 1.0     # cycles between accepted requests


@dataclass(frozen=True)
class DRAMConfig:
    latency: int = 280               # controller + device pipeline
    num_banks: int = 16
    row_size: int = 2048             # bytes per row per bank
    t_row_hit: int = 8               # bank busy cycles, row buffer hit
    t_row_miss: int = 26             # bank busy cycles, activate + access
    burst_cycles: int = 1            # bus cycles per 128 B line (~177 GB/s)


@dataclass(frozen=True)
class DACConfig:
    """DAC hardware structures, sizes from paper §4.8 / Table 1."""

    atq_entries: int = 24            # Affine Tuple Queue
    pwaq_entries: int = 192          # Per-Warp Address Queue, total
    pwpq_entries: int = 192          # Per-Warp Predicate Queue, total
    stack_depth: int = 8             # Affine SIMT Stack depth
    dcrf_entries: int = 8            # Divergent Condition Register File
    expansion_alus: int = 2          # one in the AEU, one in the PEU
    lock_lines: bool = True          # §4.2 L1 line locking (ablation knob)


@dataclass(frozen=True)
class CAEConfig:
    """Compact Affine Execution baseline (Kim et al. [13]), provisioned with
    2 affine units per SM as in paper §5.1.1."""

    affine_units: int = 2


@dataclass(frozen=True)
class MTAConfig:
    """Many-Thread-Aware prefetcher baseline (Lee et al. [15]) with the
    paper's generous 16 KB dedicated prefetch buffer per SM."""

    buffer_bytes: int = 16 * 1024
    table_entries: int = 64          # per-PC stride table
    prefetch_degree: int = 8         # lines prefetched per trigger
    throttle_window: int = 256       # prefetches per accuracy evaluation
    throttle_low_accuracy: float = 0.4


@dataclass(frozen=True)
class GPUConfig:
    # SM organization.
    num_sms: int = 15
    warps_per_sm: int = 48
    warp_size: int = 32
    num_schedulers: int = 2
    scheduler: str = "two_level"     # "two_level" or "lrr"
    active_warps_per_scheduler: int = 8
    issue_interval: int = 2          # 32-thread warp over 16 lanes (§5.1.1)
    max_ctas_per_sm: int = 8
    registers_per_sm: int = 32768    # 128 KB / 4 B

    # Functional unit latencies (cycles).
    alu_latency: int = 10
    sfu_latency: int = 24
    shared_latency: int = 26

    # Memory system.
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=48 * 1024, ways=4, hit_latency=28, num_mshrs=32))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=768 * 1024, ways=8, hit_latency=30, num_mshrs=384,
        accept_interval=0.17))       # ~6 partitions, 32+ MSHRs each
    interconnect_latency: int = 40   # each direction
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    # Technique selection: "baseline", "dac", "cae", or "mta".
    technique: str = "baseline"
    # Datapath selection: "scalar" is the reference per-warp implementation
    # (the differential oracle); "vector" is the batched numpy datapath
    # (bitmask SIMT stacks, pooled register file, compiled lane ops).  Both
    # must produce bit-identical memory images and Stats.
    datapath: str = "scalar"
    # Issue-engine selection: "walk" is the reference per-warp scheduler
    # walk (the differential oracle, kept verbatim); "batched" replaces the
    # walk with incrementally maintained readiness columns, a rotated
    # first-set-bit selection, ALU dependence-chain execution, and a global
    # next-wake heap on the GPU loop.  Both must produce bit-identical
    # cycles and Stats.  Tracing, fault injection, and runtime checkers pin
    # the walk engine (they are defined per executed scheduler walk).
    issue_engine: str = "walk"
    dac: DACConfig = field(default_factory=DACConfig)
    cae: CAEConfig = field(default_factory=CAEConfig)
    mta: MTAConfig = field(default_factory=MTAConfig)

    # Perfect-memory mode (used to classify benchmarks, §5.1.2).
    perfect_memory: bool = False

    # Safety valve for runaway kernels.
    max_cycles: int = 50_000_000

    @classmethod
    def gtx480(cls, **overrides) -> "GPUConfig":
        """The paper's Table 1 baseline."""
        return cls(**overrides)

    @classmethod
    def from_dict(cls, data: dict) -> "GPUConfig":
        """Inverse of :func:`dataclasses.asdict` (the JSON round-trip
        path): rebuilds the nested sub-config dataclasses."""
        data = dict(data)
        nested = {"l1": CacheConfig, "l2": CacheConfig, "dram": DRAMConfig,
                  "dac": DACConfig, "cae": CAEConfig, "mta": MTAConfig}
        for name, sub_cls in nested.items():
            if name in data and isinstance(data[name], dict):
                data[name] = sub_cls(**data[name])
        return cls(**data)

    def scaled(self, num_sms: int) -> "GPUConfig":
        """Same per-SM machine with ``num_sms`` SMs.  L2 *capacity* and
        MSHRs scale with the SM count (preserving per-SM cache pressure);
        L2/DRAM bandwidth and bank parallelism are left at full-chip values,
        which is generous per SM but keeps the workloads latency-bound
        rather than bandwidth-bound — the regime the paper's benchmarks run
        in (see EXPERIMENTS.md).  The bias applies equally to baseline,
        CAE, MTA, and DAC."""
        factor = num_sms / self.num_sms
        l2 = replace(self.l2,
                     size_bytes=max(self.l2.line_size * self.l2.ways * 8,
                                    int(self.l2.size_bytes * factor)),
                     num_mshrs=max(96, int(self.l2.num_mshrs * factor)))
        return replace(self, num_sms=num_sms, l2=l2)

    def __post_init__(self):
        if self.datapath not in ("scalar", "vector"):
            raise ValueError(f"unknown datapath: {self.datapath}")
        if self.issue_engine not in ("walk", "batched"):
            raise ValueError(f"unknown issue engine: {self.issue_engine}")

    def with_technique(self, technique: str) -> "GPUConfig":
        if technique not in ("baseline", "dac", "cae", "mta"):
            raise ValueError(f"unknown technique: {technique}")
        return replace(self, technique=technique)

    def with_datapath(self, datapath: str) -> "GPUConfig":
        if datapath not in ("scalar", "vector"):
            raise ValueError(f"unknown datapath: {datapath}")
        return replace(self, datapath=datapath)

    def with_issue_engine(self, issue_engine: str) -> "GPUConfig":
        if issue_engine not in ("walk", "batched"):
            raise ValueError(f"unknown issue engine: {issue_engine}")
        return replace(self, issue_engine=issue_engine)

    def with_perfect_memory(self) -> "GPUConfig":
        return replace(self, perfect_memory=True)

    def table1(self) -> str:
        """Render the configuration as the paper's Table 1."""
        lines = [
            "Baseline GPU",
            f"  GPU        Fermi (GTX480), {self.num_sms} SMs, "
            f"{self.warps_per_sm} warps/SM",
            f"  SM         {self.warp_size} SIMT lanes, "
            f"{self.registers_per_sm * 4 // 1024}KB register file",
            f"  Scheduler  {self.num_schedulers} Schedulers/SM, "
            f"{'Two Level Active' if self.scheduler == 'two_level' else 'LRR'}",
            f"  L1         {self.l1.size_bytes // 1024} KB/SM, "
            f"{self.l1.ways} Ways, {self.l1.num_mshrs} MSHRs",
            f"  L2         {self.l2.size_bytes // 1024} KB, 6 Partitions, "
            f"{self.l2.ways} Ways",
            "GPU Prefetcher (MTA)",
            f"  Prefetch Buffer  {self.mta.buffer_bytes // 1024}KB/SM "
            "(in addition to the L1)",
            "Compact Affine Execution (CAE)",
            f"  Affine Units     {self.cae.affine_units} per SM",
            "Decoupled Affine Computation (DAC)",
            f"  ATQ (per SM)   {self.dac.atq_entries} Entries",
            f"  PWAQ (per SM)  {self.dac.pwaq_entries} Entries",
            f"  PWPQ (per SM)  {self.dac.pwpq_entries} Entries",
            f"  Affine Stack   depth {self.dac.stack_depth}, "
            f"{self.warps_per_sm} PWSs",
        ]
        return "\n".join(lines)
