"""Memory-bound scenario: DAC as a non-speculative prefetcher.

Runs the LIB benchmark (streaming strided loads, the kind of workload the
paper's §5.5 analyzes) under the baseline, the MTA speculative prefetcher,
and DAC, and breaks down *why* DAC wins: the affine warp issues the loads
early (lead time), non-speculatively, and locks the lines until use.

Run:  python examples/streaming_prefetch.py
"""

from repro.core import run_dac
from repro.harness import experiment_config
from repro.sim import simulate
from repro.workloads import get


def main():
    config = experiment_config()
    benchmark = get("LIB")

    base = simulate(benchmark.launch("paper"), config)
    mta = simulate(benchmark.launch("paper"),
                   config.with_technique("mta"))
    dac = run_dac(benchmark.launch("paper"), config)

    print("=" * 70)
    print(f"LIB ({benchmark.name}): {benchmark.description}")
    print("=" * 70)
    print(f"{'':12s}{'cycles':>10s}{'speedup':>9s}"
          f"{'DRAM reads':>12s}{'notes'}")
    rows = [
        ("baseline", base, ""),
        ("MTA", mta,
         f"  {mta.stats['mta.prefetches']:.0f} speculative prefetches, "
         f"{mta.stats['mta.useless_prefetches']:.0f} useless"),
        ("DAC", dac,
         f"  {dac.stats['dac.affine_load_lines']:.0f} early requests, "
         f"all non-speculative"),
    ]
    for name, result, note in rows:
        print(f"{name:12s}{result.cycles:10d}"
              f"{base.cycles / result.cycles:9.2f}"
              f"{result.stats['dram.reads']:12.0f}{note}")

    print()
    deqs = max(1, dac.stats["dac.deq_loads"])
    print("Why DAC hides latency (paper §4, §5.5):")
    print(f"  * the affine warp ran "
          f"{dac.stats['affine_warp_instructions']:.0f} instructions "
          f"({dac.stats['affine_warp_instructions'] / dac.stats['warp_instructions']:.1%} "
          f"of the non-affine count) and produced every address early;")
    print(f"  * average lead time between data arriving in the L1 and the "
          f"consuming dequeue: {dac.stats['dac.lead_cycles'] / deqs:.0f} "
          f"cycles (request-to-use "
          f"{dac.stats['dac.issue_to_deq'] / deqs:.0f});")
    print(f"  * {dac.stats['dac.affine_load_lines']:.0f} lines were "
          f"line-locked in the L1 until their dequeue "
          f"({dac.stats['dac.lock_denied']:.0f} lock denials, "
          f"{dac.stats['dac.deq_refetches']:.0f} refetches after early "
          f"eviction);")
    frac = dac.stats["dac.affine_load_lines"] / max(
        1, dac.stats["dac.affine_load_lines"] + dac.stats["gmem_load_lines"])
    print(f"  * {frac:.0%} of global/local load requests were issued by "
          f"the affine warp (Fig. 19).")


if __name__ == "__main__":
    main()
