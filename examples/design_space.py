"""Design-space exploration with the sweep utilities.

Reproduces the sizing intuition behind the paper's Table 1 DAC structures:
how DAC's speedup on a latency-bound streaming workload responds to

* the per-warp queue budget (run-ahead distance),
* the ATQ budget (expansion buffering),
* the L1 MSHR count (memory-level-parallelism ceiling for everyone).

Run:  python examples/design_space.py
"""

from repro.harness import experiment_config, sweep


def main():
    config = experiment_config()

    print(sweep("LIB", "dac.pwaq_entries", [48, 96, 192, 384, 768],
                config).table())
    print("\nThe paper's 192 entries (4 records/warp) sit at the knee:\n"
          "run-ahead is bounded by queue depth x per-iteration records.\n")

    print(sweep("LIB", "dac.atq_entries", [2, 6, 12, 24, 48],
                config).table())
    print("\nThe ATQ buffers whole-CTA tuples awaiting expansion; the\n"
          "paper's 24 entries are ample once the PWAQ is the bottleneck.\n")

    print(sweep("LIB", "l1.num_mshrs", [8, 16, 32, 64], config).table())
    print("\nMSHRs cap outstanding misses per SM for baseline and DAC\n"
          "alike; DAC needs headroom here to convert run-ahead into\n"
          "memory-level parallelism (cf. DESIGN.md).")


if __name__ == "__main__":
    main()
