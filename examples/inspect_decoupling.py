"""Compiler tour: watch the decoupling pass work (paper §4.6-§4.7).

Shows the affine type classification, the divergent-affine analysis, and
the generated streams for three kernels of increasing difficulty:

1. a simple streaming kernel (everything decouples);
2. a boundary-clamped kernel whose address needs a *divergent affine
   tuple* (two guarded tuples selected per thread at expansion);
3. an indirect-access kernel where decoupling is mostly refused.

Run:  python examples/inspect_decoupling.py
"""

from repro.affine import OperandClass
from repro.compiler.affine_analysis import AffineAnalysis
from repro.compiler.decouple import decouple
from repro.isa import parse_kernel

SIMPLE = parse_kernel("""
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add src, param.A, r1;
    ld.global v, [src];
    mul w, v, 2;
    add dst, param.B, r1;
    st.global [dst], w;
""", name="simple", params=("A", "B"))

DIVERGENT = parse_kernel("""
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    setp.lt p1, tid, param.border;
    mul off, tid, 4;
    @p1 mov off, 0;
    add src, param.A, off;
    ld.global v, [src];
    mul r2, tid, 4;
    add dst, param.B, r2;
    st.global [dst], v;
""", name="divergent", params=("A", "B", "border"))

INDIRECT = parse_kernel("""
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add iaddr, param.idx, r1;
    ld.global j, [iaddr];
    mul r2, j, 4;
    add gaddr, param.A, r2;
    ld.global v, [gaddr];
    st.global [gaddr], v;
""", name="indirect", params=("idx", "A"))

CLASS_NAMES = {OperandClass.SCALAR: "scalar",
               OperandClass.AFFINE: "affine",
               OperandClass.NONAFFINE: "non-affine"}


def show(kernel):
    print("#" * 70)
    print(f"kernel {kernel.name!r}")
    print("#" * 70)
    analysis = AffineAnalysis(kernel)
    print("classification (paper §4.7, scalar < affine < non-affine):")
    for idx, inst in enumerate(kernel.instructions):
        cls = analysis.def_class.get(idx)
        label = CLASS_NAMES[cls] if cls is not None else ""
        print(f"  {idx:2d}  {str(inst):42s} {label}")
    program = decouple(kernel)
    print(f"\n{program.summary()}\n")
    if program.is_decoupled:
        print("--- affine stream ---")
        print(program.affine.source())
        print("--- non-affine stream ---")
        print(program.nonaffine.source())


def main():
    for kernel in (SIMPLE, DIVERGENT, INDIRECT):
        show(kernel)
    print("Note how 'divergent' keeps the guarded `mov off, 0` in the "
          "affine stream:\nat run time the register holds two guarded "
          "tuples (a DivergentSet), and the\nAEU selects per thread using "
          "the DCRF bit vector (paper §4.6, Fig. 14-15).")


if __name__ == "__main__":
    main()
