"""Quickstart: decouple and simulate the paper's running example.

Builds the kernel from Fig. 4b of the paper, shows the affine / non-affine
streams the compiler produces (Fig. 7), and compares baseline and DAC
executions on a small GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler.decouple import decouple
from repro.core import run_dac
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch, simulate

# The CUDA kernel from paper Fig. 4a, in the mini ISA (Fig. 4b):
#
#   for (i = 0; i < dim; i++) { tmp = A[i*num + tid]; B[i*num+tid] = tmp+1; }
#
KERNEL = parse_kernel("""
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add addrA, param.A, r1;
    add addrB, param.B, r1;
    mov i, 0;
LOOP:
    ld.global tmp, [addrA];
    add r2, tmp, 1;
    st.global [addrB], r2;
    add i, i, 1;
    mul r3, param.num, 4;
    add addrA, r3, addrA;
    add addrB, r3, addrB;
    setp.ne p0, param.dim, i;
    @p0 bra LOOP;
""", name="example", params=("A", "B", "dim", "num"))


def build_launch():
    mem = GlobalMemory(1 << 22)
    num, dim = 512, 16                   # 512 threads, 16 loop iterations
    a = mem.alloc_array(np.arange(num * dim, dtype=float))
    b = mem.alloc(num * dim)
    launch = KernelLaunch(KERNEL, grid_dim=(4, 1, 1), block_dim=(128, 1, 1),
                          params=dict(A=a, B=b, dim=dim, num=num),
                          memory=mem)
    return launch, b, num * dim


def main():
    print("=" * 70)
    print("The compiler splits the kernel into two streams (paper Fig. 7):")
    print("=" * 70)
    program = decouple(KERNEL)
    print(program.summary())
    print("\n--- affine stream (runs once, on the affine warp) ---")
    print(program.affine.source())
    print("--- non-affine stream (runs on every warp) ---")
    print(program.nonaffine.source())

    config = GPUConfig.gtx480().scaled(2)

    launch, out, n = build_launch()
    base = simulate(launch, config)
    expected = np.arange(n) + 1
    assert np.array_equal(launch.memory.read_array(out, n), expected)

    launch, out, n = build_launch()
    dac = run_dac(launch, config)
    assert np.array_equal(launch.memory.read_array(out, n), expected)

    print("=" * 70)
    print(f"baseline : {base.cycles:7d} cycles, "
          f"{base.stats['warp_instructions']:7.0f} warp instructions")
    print(f"DAC      : {dac.cycles:7d} cycles, "
          f"{dac.stats['warp_instructions']:7.0f} non-affine + "
          f"{dac.stats['affine_warp_instructions']:5.0f} affine instructions")
    print(f"speedup  : {base.cycles / dac.cycles:.2f}x    "
          f"instruction reduction: "
          f"{1 - dac.stats['warp_instructions'] / base.stats['warp_instructions']:.0%}")
    print(f"loads prefetched by the affine warp: "
          f"{dac.stats['dac.affine_load_lines']:.0f} lines "
          f"({dac.stats['dac.affine_loads']:.0f} warp-records)")


if __name__ == "__main__":
    main()
