"""Regenerate every table and figure of the paper's evaluation.

This is the script behind EXPERIMENTS.md: it runs all 29 benchmarks under
all four techniques at 'paper' scale on the 4-SM experiment machine and
prints each figure in order.  Expect a few minutes of runtime.

Run:  python examples/run_experiments.py [--out FILE]
"""

import argparse
import sys
import time

from repro.energy import area_report
from repro.harness import (
    ascii_table,
    experiment_config,
    fig6_report,
    fig16_report,
    fig16_speedup,
    fig17_instruction_counts,
    fig18_coverage,
    fig19_affine_loads,
    fig20_mta_coverage,
    fig21_energy,
    fig21_report,
    table2_classification,
)
from repro.workloads import table2


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument("--sms", type=int, default=4,
                        help="number of SMs to simulate (default 4)")
    args = parser.parse_args(argv)

    if args.out:
        stream = open(args.out, "w")
        stdout = sys.stdout

        class Tee:
            def write(self, text):
                stdout.write(text)
                stream.write(text)

            def flush(self):
                stdout.flush()
                stream.flush()

        sys.stdout = Tee()

    config = experiment_config(args.sms)
    t0 = time.time()

    banner("Table 1: simulation parameters")
    print(config.table1())
    print(f"\n(experiments run the per-SM machine above on {args.sms} SMs "
          "with L2 capacity scaled; see DESIGN.md)")

    banner("Table 2: benchmarks")
    print(table2())
    print("\nClassification by the perfect-memory rule (>= 1.5x):")
    classification = table2_classification(config=config)
    rows = [[abbr, d["perfect_speedup"], d["measured"], d["paper"]]
            for abbr, d in classification.items()]
    print(ascii_table(["bench", "perfect-mem speedup", "measured", "paper"],
                      rows))

    banner("Figure 6: potentially affine static instructions")
    print(fig6_report())

    banner("Figure 16: speedup of CAE, MTA, DAC over baseline")
    speedups = fig16_speedup(config=config)
    print(fig16_report(speedups))

    banner("Figure 17: DAC warp instructions normalized to baseline")
    counts = fig17_instruction_counts(config=config)
    rows = [[abbr, v["nonaffine"], v["affine"], v["total"],
             v["replaced_per_affine"]] for abbr, v in counts.items()]
    print(ascii_table(["bench", "non-affine", "affine", "total",
                       "replaced/affine"], rows))

    banner("Figure 18: affine instruction coverage (compute set)")
    coverage = fig18_coverage(config=config)
    print(ascii_table(["bench", "CAE", "DAC"],
                      [[abbr, v["cae"], v["dac"]]
                       for abbr, v in coverage.items()]))

    banner("Figure 19: affine global/local load requests (memory set)")
    loads = fig19_affine_loads(config=config)
    print(ascii_table(["bench", "fraction"],
                      [[a, f] for a, f in loads.items()]))

    banner("Figure 20: MTA prefetcher coverage (memory set)")
    mta = fig20_mta_coverage(config=config)
    print(ascii_table(["bench", "coverage"],
                      [[a, f] for a, f in mta.items()]))

    banner("Figure 21: DAC energy normalized to baseline")
    print(fig21_report(fig21_energy(config=config)))

    banner("Section 4.8: area overhead")
    print(area_report().table())

    banner("Headline comparison with the paper")
    m = speedups.means
    print(ascii_table(
        ["metric", "paper", "measured"],
        [["DAC speedup, all 29", 1.407, m["all"]["dac"]],
         ["DAC speedup, compute", 1.34, m["compute"]["dac"]],
         ["DAC speedup, memory", 1.44, m["memory"]["dac"]],
         ["CAE speedup, compute", 1.11, m["compute"]["cae"]],
         ["MTA speedup, memory", 1.16, m["memory"]["mta"]],
         ["warp instructions vs baseline", 0.74, counts["MEAN"]["total"]],
         ["affine load fraction", 0.798, loads["MEAN"]],
         ["energy vs baseline", 0.798,
          fig21_energy(config=config)["MEAN"]["total"]],
         ["area overhead", 0.0106, area_report().overhead_fraction]]))
    print(f"\ntotal experiment time: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
