"""Compute-bound scenario: DAC as redundancy elimination.

Runs the CP benchmark (issue-bound, address/index arithmetic in every
iteration) under the baseline, CAE, and DAC.  CAE executes affine warp
instructions on dedicated affine units — but every warp still executes
them; DAC executes them once per CTA on the affine warp, so the dynamic
warp-instruction count itself drops (paper Fig. 3, Fig. 17).

Run:  python examples/compute_affine.py
"""

from repro.core import run_dac
from repro.energy import energy_of
from repro.harness import experiment_config
from repro.sim import simulate
from repro.workloads import get


def main():
    config = experiment_config()
    benchmark = get("CP")

    base = simulate(benchmark.launch("paper"), config)
    cae = simulate(benchmark.launch("paper"), config.with_technique("cae"))
    dac = run_dac(benchmark.launch("paper"), config)

    base_insts = base.stats["warp_instructions"]
    print("=" * 70)
    print(f"CP ({benchmark.name}): {benchmark.description}")
    print("=" * 70)
    print(f"{'':10s}{'cycles':>9s}{'speedup':>9s}{'warp insts':>12s}"
          f"{'vs base':>9s}  energy")
    for name, result in (("baseline", base), ("CAE", cae), ("DAC", dac)):
        insts = result.stats["warp_instructions"]
        affine = result.stats["affine_warp_instructions"]
        energy = energy_of(result).total
        extra = f" (+{affine:.0f} affine)" if affine else ""
        print(f"{name:10s}{result.cycles:9d}"
              f"{base.cycles / result.cycles:9.2f}"
              f"{insts:12.0f}{insts / base_insts:9.1%}"
              f"  {energy * 1e6:7.1f} uJ{extra}")

    print()
    print("How each technique treats the affine work:")
    print(f"  * CAE executed {cae.stats['cae.affine_instructions']:.0f} "
          f"instructions on its affine units "
          f"({cae.stats['cae.affine_instructions'] / base_insts:.0%} "
          f"coverage, Fig. 18) - but every warp still issued them;")
    removed = base_insts - dac.stats["warp_instructions"]
    affine = dac.stats["affine_warp_instructions"]
    print(f"  * DAC removed {removed:.0f} warp instructions from the "
          f"non-affine stream and replaced them with {affine:.0f} affine "
          f"warp instructions - {removed / max(1, affine):.1f} instructions "
          f"replaced per affine instruction (paper §5.3);")
    print(f"  * DAC's ALU operation count fell by "
          f"{1 - dac.stats['alu_ops'] / base.stats['alu_ops']:.0%} "
          f"(paper §5.6 reports 44%).")


if __name__ == "__main__":
    main()
