"""Tutorial: bring your own kernel to the full harness.

Shows the complete downstream-user workflow:

1. build a kernel with the programmatic :class:`KernelBuilder`;
2. sanity-check it on the timing-free functional interpreter;
3. inspect what the decoupling compiler does to it (and verify);
4. compare all four machines on it;
5. profile the DAC run.

Run:  python examples/custom_benchmark.py
"""

import numpy as np

from repro.compiler import decouple, verify
from repro.core import run_dac
from repro.harness import experiment_config, profile
from repro.isa import CmpOp, KernelBuilder
from repro.sim import GlobalMemory, KernelLaunch, run_functional, simulate


def build_kernel():
    """A blocked 'distance to nearest center' kernel, built fluently."""
    b = KernelBuilder("nearest", params=("pts", "centers", "out", "k"))
    tid = b.global_tid_x()
    poff = b.mul(tid, 8)
    px = b.load(b.add(b.param("pts"), poff))
    py = b.load(b.add(b.param("pts"), poff), displacement=4)
    best = b.mov(10 ** 9, name="best")
    c = b.loop_counter(b.param("k"))
    caddr = b.add(b.param("centers"), b.mul(c, 8))
    dx = b.sub(px, b.load(caddr))
    dy = b.sub(py, b.load(caddr, displacement=4))
    d2 = b.mad(dx, dx, b.mul(dy, dy))
    b.assign(best, b.min(best, d2))
    b.end_loop()
    b.store(b.add(b.param("out"), b.mul(tid, 4)), best)
    return b.build()


def build_launch(kernel, blocks=8, threads=128, k=12):
    mem = GlobalMemory(1 << 22)
    rng = np.random.default_rng(0)
    n = blocks * threads
    pts = mem.alloc_array(rng.integers(0, 100, n * 2))
    centers = mem.alloc_array(rng.integers(0, 100, k * 2))
    out = mem.alloc(n)
    return KernelLaunch(kernel, (blocks, 1, 1), (threads, 1, 1),
                        dict(pts=pts, centers=centers, out=out, k=k),
                        mem), out, n


def main():
    kernel = build_kernel()
    print("generated kernel:")
    print(kernel.source())

    # 2. Functional sanity check against numpy.
    launch, out, n = build_launch(kernel)
    run_functional(launch)
    pts = launch.memory.read_array(int(launch.params["pts"]), n * 2)
    centers = launch.memory.read_array(
        int(launch.params["centers"]), 12 * 2).reshape(12, 2)
    d2 = ((pts.reshape(n, 2)[:, None, :] - centers[None]) ** 2).sum(2)
    assert np.array_equal(launch.memory.read_array(out, n), d2.min(1))
    print("functional check against numpy: OK\n")

    # 3. What does the compiler do with it?
    program = decouple(kernel)
    print(program.summary())
    print(verify(program), "\n")

    # 4. All four machines.
    config = experiment_config()
    base_cycles = None
    for technique in ("baseline", "cae", "mta", "dac"):
        launch, out, n = build_launch(kernel)
        if technique == "dac":
            result = run_dac(launch, config)
        else:
            result = simulate(launch, config.with_technique(technique))
        base_cycles = base_cycles or result.cycles
        print(f"{technique:9s} {result.cycles:7d} cycles   "
              f"speedup {base_cycles / result.cycles:5.2f}")

    # 5. Profile the DAC run.
    launch, out, n = build_launch(kernel)
    print("\nDAC profile:")
    print(profile(run_dac(launch, config)).report())


if __name__ == "__main__":
    main()
