"""Ablations for DAC's design choices (DESIGN.md):

* per-warp queue depth (PWAQ/PWPQ entries) — bounds the affine warp's
  run-ahead distance;
* L1 line locking (§4.2) — protects early-fetched lines from eviction.

Run on a latency-bound memory benchmark (LIB) where both mechanisms bite.
"""

import dataclasses

from repro.core import run_dac
from repro.harness import experiment_config
from repro.sim import simulate
from repro.workloads import get

from conftest import BENCH_SCALE, print_table


def _dac_with(config, **dac_overrides):
    return dataclasses.replace(
        config, dac=dataclasses.replace(config.dac, **dac_overrides))


def test_ablation_queue_depth(benchmark, bench_config):
    def sweep():
        base = simulate(get("LIB").launch(BENCH_SCALE), bench_config)
        rows = []
        for entries in (48, 96, 192, 384):
            config = _dac_with(bench_config, pwaq_entries=entries,
                               pwpq_entries=entries)
            dac = run_dac(get("LIB").launch(BENCH_SCALE), config)
            rows.append([f"{entries} ({entries // 48}/warp)",
                         base.cycles / dac.cycles])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.harness import ascii_table
    print_table("Ablation: per-warp queue depth vs DAC speedup (LIB)",
                ascii_table(["PWAQ/PWPQ entries", "speedup"], rows))
    # Deeper queues = more run-ahead; speedup must not decrease much.
    speedups = [r[1] for r in rows]
    assert speedups[-1] >= speedups[0] * 0.95


def test_ablation_line_locking(benchmark, bench_config):
    # Locking matters when the L1 is under pressure: shrink it so early
    # lines face eviction before their demand access (paper §4.2).
    pressured = dataclasses.replace(
        bench_config,
        l1=dataclasses.replace(bench_config.l1, size_bytes=4 * 1024))

    def sweep():
        base = simulate(get("LIB").launch(BENCH_SCALE), pressured)
        locked = run_dac(get("LIB").launch(BENCH_SCALE), pressured)
        unlocked = run_dac(get("LIB").launch(BENCH_SCALE),
                           _dac_with(pressured, lock_lines=False))
        return base, locked, unlocked

    base, locked, unlocked = benchmark.pedantic(sweep, rounds=1,
                                                iterations=1)
    from repro.harness import ascii_table
    print_table(
        "Ablation: L1 line locking (LIB)",
        ascii_table(
            ["variant", "speedup", "deq refetches"],
            [["locking on (paper §4.2)", base.cycles / locked.cycles,
              locked.stats["dac.deq_refetches"]],
             ["locking off", base.cycles / unlocked.cycles,
              unlocked.stats["dac.deq_refetches"]]]))
    # Without locks, early lines may be evicted before use; with locks,
    # refetches are impossible.
    assert locked.stats["dac.deq_refetches"] == 0
