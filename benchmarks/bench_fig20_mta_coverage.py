"""Figure 20: MTA prefetcher coverage on the memory-intensive set."""

from repro.harness import ascii_table, fig20_mta_coverage

from conftest import BENCH_SCALE, print_table


def test_fig20_mta_coverage(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: fig20_mta_coverage(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    rows = [[abbr, frac] for abbr, frac in data.items()]
    print_table("Figure 20: MTA prefetcher coverage",
                ascii_table(["bench", "coverage"], rows))
    assert 0.0 <= data["MEAN"] <= 1.0
