"""Table 2: the benchmark list and the memory/compute classification
(speedup >= 1.5 under perfect memory, paper §5.1.2)."""

from repro.harness import table2_classification
from repro.workloads import table2

from conftest import BENCH_SCALE, print_table


def test_table2_classification(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: table2_classification(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    rows = [f"{abbr:4s} perfect={d['perfect_speedup']:5.2f} "
            f"measured={d['measured']:8s} paper={d['paper']}"
            for abbr, d in data.items()]
    print_table("Table 2: benchmarks and classification",
                table2() + "\n\nClassification (perfect-memory rule):\n"
                + "\n".join(rows))
    agree = sum(1 for d in data.values() if d["measured"] == d["paper"])
    # At tiny scale a few benchmarks flip class; most must agree.
    assert agree >= len(data) * 0.6
