"""Figure 16: speedup of CAE, MTA, and DAC over the baseline GPU."""

from repro.harness import fig16_report, fig16_speedup

from conftest import BENCH_SCALE, print_table


def test_fig16_speedups(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: fig16_speedup(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    print_table("Figure 16: speedups over baseline", fig16_report(data))
    # Shape assertions (paper: DAC 1.40 global, best in both classes).
    assert data.means["all"]["dac"] > 1.05
    assert data.means["all"]["dac"] > data.means["all"]["cae"]
    assert data.means["all"]["dac"] > data.means["all"]["mta"]
    assert data.means["compute"]["cae"] > data.means["memory"]["cae"]
