"""Figure 6: percentage of static instructions computing on scalar data
and thread IDs (potentially affine), per benchmark."""

from repro.harness import fig6_affine_potential, fig6_report

from conftest import print_table


def test_fig6_affine_potential(benchmark):
    data = benchmark.pedantic(fig6_affine_potential, rounds=1, iterations=1)
    print_table("Figure 6: potentially affine static instructions",
                fig6_report())
    mean = data["MEAN"]
    total = mean["arithmetic"] + mean["memory"] + mean["branch"]
    # Paper: about half of static instructions are potentially affine.
    assert 0.30 <= total <= 0.85
