"""Figure 21: energy consumption of DAC normalized to the baseline."""

from repro.harness import fig21_energy, fig21_report

from conftest import BENCH_SCALE, print_table


def test_fig21_energy(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: fig21_energy(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    print_table("Figure 21: DAC energy normalized to baseline",
                fig21_report(data))
    # Paper: 0.798 total; the shape requirement is energy below baseline
    # with a small DAC overhead slice.
    assert data["MEAN"]["total"] < 1.0
    overheads = [v["dac_overhead"] for k, v in data.items() if k != "MEAN"]
    assert max(overheads) < 0.12
