"""Shared configuration for the per-figure benchmark harness.

Benches run the experiment pipeline at the full ``paper`` scale on the
4-SM experiment machine (the same configuration EXPERIMENTS.md records).
All (benchmark, technique) simulation runs are memoized for the pytest
session, so the ten figure benches share one set of runs and the whole
suite completes in a few minutes.
"""

import pytest

from repro.harness import experiment_config

#: Scale and machine used by every bench in this directory.
BENCH_SCALE = "paper"


@pytest.fixture(scope="session")
def bench_config():
    return experiment_config()


def print_table(title, text):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text)
