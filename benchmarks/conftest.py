"""Shared configuration for the per-figure benchmark harness.

Benches run the experiment pipeline at the full ``paper`` scale on the
4-SM experiment machine (the same configuration EXPERIMENTS.md records).
All (benchmark, technique) simulation runs are memoized for the pytest
session *and* persisted in the on-disk result cache, so the ten figure
benches share one set of runs, the whole suite completes in a few minutes
cold — and in seconds warm, loading every run from disk.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache location (default ``.repro-cache/`` in the
  repo root); set ``REPRO_NO_CACHE=1`` to disable persistence.
* ``REPRO_JOBS`` — with ``N > 1``, a session fixture prewarms the full
  (benchmark × technique) grid over ``N`` worker processes before the
  first bench runs.
"""

import os
import pathlib

import pytest

from repro.harness import configure_cache, experiment_config, run_suite
from repro.workloads import COMPUTE_ORDER, MEMORY_ORDER

#: Scale and machine used by every bench in this directory.
BENCH_SCALE = "paper"

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def pytest_configure(config):
    if os.environ.get("REPRO_NO_CACHE"):
        configure_cache(enabled=False)
        return
    cache_dir = os.environ.get("REPRO_CACHE_DIR") \
        or _REPO_ROOT / ".repro-cache"
    configure_cache(cache_dir)


@pytest.fixture(scope="session")
def bench_config():
    return experiment_config()


@pytest.fixture(scope="session", autouse=True)
def _prewarm_grid(bench_config):
    """With ``REPRO_JOBS > 1``, run the whole grid in parallel up front so
    the serial figure benches assemble their tables from cache hits."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    if jobs > 1:
        run_suite(COMPUTE_ORDER + MEMORY_ORDER, BENCH_SCALE, bench_config,
                  jobs=jobs)


def print_table(title, text):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text)
