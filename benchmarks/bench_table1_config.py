"""Table 1: simulation parameters — construction and rendering."""

from repro.sim import GPUConfig

from conftest import print_table


def test_table1_configuration(benchmark):
    config = benchmark(GPUConfig.gtx480)
    print_table("Table 1: Simulation Parameters", config.table1())
    assert config.num_sms == 15
    assert config.warps_per_sm == 48
    assert config.l1.size_bytes == 48 * 1024
    assert config.l2.size_bytes == 768 * 1024
    assert config.dac.atq_entries == 24
