"""Figure 17: warp instructions executed by DAC normalized to baseline."""

from repro.harness import ascii_table, fig17_instruction_counts

from conftest import BENCH_SCALE, print_table


def test_fig17_instruction_counts(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: fig17_instruction_counts(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    rows = [[abbr, v["nonaffine"], v["affine"], v["total"],
             v["replaced_per_affine"]] for abbr, v in data.items()]
    print_table("Figure 17: DAC warp instructions (normalized)",
                ascii_table(["bench", "non-affine", "affine", "total",
                             "repl/affine"], rows))
    # Paper: 26% fewer instructions; one affine instruction replaces ~9.
    assert data["MEAN"]["total"] < 0.95
    assert data["MEAN"]["replaced_per_affine"] > 1.5
