"""§4.8: area overhead of DAC's added hardware (~1.06% of a GTX 480)."""

from repro.energy import area_report

from conftest import print_table


def test_area_overhead(benchmark):
    report = benchmark(area_report)
    print_table("Section 4.8: area estimation", report.table())
    assert 0.008 < report.overhead_fraction < 0.014
