"""Figure 19: % of global/local load requests issued by the affine warp."""

from repro.harness import ascii_table, fig19_affine_loads

from conftest import BENCH_SCALE, print_table


def test_fig19_affine_load_fraction(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: fig19_affine_loads(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    rows = [[abbr, frac] for abbr, frac in data.items()]
    print_table("Figure 19: affine global/local load requests",
                ascii_table(["bench", "fraction"], rows))
    # Paper: 79.8% mean; BFS/BT near zero (indirect accesses).
    assert data["MEAN"] > 0.4
    assert data["BFS"] < 0.4
    assert data["LIB"] > 0.8
