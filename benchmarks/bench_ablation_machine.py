"""Machine-level ablations: scheduler policy and MTA aggressiveness.

These back the design-choice discussion in DESIGN.md: the two-level active
scheduler of Table 1 versus plain loose round-robin, and the sensitivity of
the MTA baseline to its prefetch degree (its throttling target).
"""

from repro.harness import sweep

from conftest import BENCH_SCALE, print_table


def test_ablation_scheduler_policy(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: sweep("MC", "scheduler", ["two_level", "lrr"],
                      bench_config, technique="baseline",
                      scale=BENCH_SCALE),
        rounds=1, iterations=1)
    print_table("Ablation: warp scheduler policy (MC, baseline)",
                result.table())
    # Both policies must complete; timing within a sane band of each other.
    speedups = [p.speedup for p in result.points]
    assert all(0.5 < s < 2.0 for s in speedups)


def test_ablation_mta_degree(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: sweep("ST", "mta.prefetch_degree", [0, 2, 8, 16],
                      bench_config, technique="mta", scale=BENCH_SCALE,
                      keep_stats=("mta.prefetches",
                                  "mta.useless_prefetches")),
        rounds=1, iterations=1)
    print_table("Ablation: MTA prefetch degree (ST)", result.table())
    points = {p.value: p for p in result.points}
    # Degree 0 disables prefetching entirely.
    assert points[0].stats["mta.prefetches"] == 0
    # Some aggressiveness beats none on a streaming stencil.
    assert max(p.speedup for p in result.points) > points[0].speedup
