"""Figure 18: affine instruction coverage of DAC vs CAE (compute set)."""

from repro.harness import ascii_table, fig18_coverage

from conftest import BENCH_SCALE, print_table


def test_fig18_coverage(benchmark, bench_config):
    data = benchmark.pedantic(
        lambda: fig18_coverage(BENCH_SCALE, bench_config),
        rounds=1, iterations=1)
    rows = [[abbr, v["cae"], v["dac"]] for abbr, v in data.items()]
    print_table("Figure 18: affine instruction coverage",
                ascii_table(["bench", "CAE", "DAC"], rows))
    # CAE tracks affine values within warps; its raw coverage is broad,
    # while DAC's statically-decoupled coverage translates to removal.
    assert data["MEAN"]["dac"] > 0.02
    assert data["MEAN"]["cae"] > 0.05
